//! Fused neural-network operations: softmax, log-softmax, cross-entropy
//! over logits, embedding row gather — plus the [`Tensor::custom`] escape
//! hatch that lets downstream crates (e.g. RoPE in `zg-model`) define their
//! own differentiable ops.

use crate::shape::Shape;
use crate::tensor::{BackwardFn, Tensor};

/// (outer, len) extents treating `axis` as the reduced dim; requires the
/// axis to be the last one for the fused kernels below.
fn last_axis_extents(shape: &Shape) -> (usize, usize) {
    let dims = shape.dims();
    // INVARIANT: rank >= 1 is the documented precondition of the fused
    // last-axis kernels; rank-0 input is a caller bug.
    let len = *dims.last().expect("rank >= 1 required");
    (shape.numel() / len, len)
}

impl Tensor {
    /// Public constructor for user-defined differentiable operations.
    ///
    /// `backward` receives the output node; read its gradient with
    /// [`Tensor::grad`] and push into parents with
    /// [`Tensor::accumulate_grad`] (guard on [`Tensor::requires_grad`]).
    pub fn custom(
        data: Vec<f32>,
        shape: impl Into<Shape>,
        parents: Vec<Tensor>,
        backward: impl Fn(&Tensor) + 'static,
    ) -> Tensor {
        let backward: BackwardFn = Box::new(backward);
        Tensor::from_op(data, shape.into(), parents, backward)
    }

    /// Numerically-stable softmax over the last axis.
    pub fn softmax(&self) -> Tensor {
        let (outer, len) = last_axis_extents(self.shape());
        let data = self.data();
        let mut out = crate::pool::take_scratch(data.len());
        for o in 0..outer {
            let row = &data[o * len..(o + 1) * len];
            let orow = &mut out[o * len..(o + 1) * len];
            let m = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let mut z = 0.0f32;
            for (ov, &v) in orow.iter_mut().zip(row) {
                let e = (v - m).exp();
                *ov = e;
                z += e;
            }
            let inv = 1.0 / z;
            for ov in orow.iter_mut() {
                *ov *= inv;
            }
        }
        drop(data);
        let parent = self.clone();
        Tensor::from_op(
            out,
            self.shape().clone(),
            vec![self.clone()],
            Box::new(move |outt| {
                let g = outt.out_grad();
                let g: &[f32] = &g;
                let y = outt.data();
                // Scratch: every element is written below.
                let mut gx = crate::pool::PooledBuf::scratch(y.len());
                for o in 0..outer {
                    let yr = &y[o * len..(o + 1) * len];
                    let gr = &g[o * len..(o + 1) * len];
                    let dot: f32 = yr.iter().zip(gr).map(|(&a, &b)| a * b).sum();
                    for ((gx, &yi), &gi) in gx[o * len..(o + 1) * len].iter_mut().zip(yr).zip(gr) {
                        *gx = yi * (gi - dot);
                    }
                }
                drop(y);
                if parent.requires_grad() {
                    parent.accumulate_grad(&gx);
                }
            }),
        )
    }

    /// Numerically-stable log-softmax over the last axis.
    pub fn log_softmax(&self) -> Tensor {
        let (outer, len) = last_axis_extents(self.shape());
        let data = self.data();
        let mut out = crate::pool::take_scratch(data.len());
        for o in 0..outer {
            let row = &data[o * len..(o + 1) * len];
            let m = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let lse = m + row.iter().map(|&v| (v - m).exp()).sum::<f32>().ln();
            for (ov, &v) in out[o * len..(o + 1) * len].iter_mut().zip(row) {
                *ov = v - lse;
            }
        }
        drop(data);
        let parent = self.clone();
        Tensor::from_op(
            out,
            self.shape().clone(),
            vec![self.clone()],
            Box::new(move |outt| {
                let g = outt.out_grad();
                let g: &[f32] = &g;
                let y = outt.data();
                // Scratch: every element is written below.
                let mut gx = crate::pool::PooledBuf::scratch(y.len());
                for o in 0..outer {
                    let yr = &y[o * len..(o + 1) * len];
                    let gr = &g[o * len..(o + 1) * len];
                    let gsum: f32 = gr.iter().sum();
                    for ((gx, &yi), &gi) in gx[o * len..(o + 1) * len].iter_mut().zip(yr).zip(gr) {
                        *gx = gi - yi.exp() * gsum;
                    }
                }
                drop(y);
                if parent.requires_grad() {
                    parent.accumulate_grad(&gx);
                }
            }),
        )
    }

    /// Mean cross-entropy between `(..., C)` logits and integer class targets.
    ///
    /// Leading dimensions are collapsed into one row axis, so `(N, C)` and
    /// `(B, T, C)` behave identically — the language-model loss feeds
    /// `(batch, time, vocab)` logits straight in without a reshape copy.
    ///
    /// `ignore_index` positions (e.g. padding) contribute neither loss nor
    /// gradient; the mean divides by the number of counted positions.
    pub fn cross_entropy_logits(&self, targets: &[usize], ignore_index: Option<usize>) -> Tensor {
        assert!(
            self.rank() >= 2,
            "cross_entropy_logits expects (..., C) logits with rank >= 2"
        );
        let c = self.dims()[self.rank() - 1];
        let n = self.numel() / c.max(1);
        assert_eq!(
            targets.len(),
            n,
            "targets length must equal the number of logit rows"
        );
        let data = self.data();
        // Per-row log-softmax probabilities of the target class.
        let mut counted = 0usize;
        let mut loss = 0.0f32;
        // Softmax saved for backward; scratch is safe, every element is
        // written below. The handle rides inside the backward closure and
        // recycles when the graph node drops.
        let mut probs = crate::pool::PooledBuf::scratch(n * c);
        for i in 0..n {
            let row = &data[i * c..(i + 1) * c];
            let m = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let mut z = 0.0f32;
            for (j, &v) in row.iter().enumerate() {
                let e = (v - m).exp();
                probs[i * c + j] = e;
                z += e;
            }
            let inv = 1.0 / z;
            for p in &mut probs[i * c..(i + 1) * c] {
                *p *= inv;
            }
            if ignore_index == Some(targets[i]) {
                continue;
            }
            assert!(targets[i] < c, "target {} out of range", targets[i]);
            counted += 1;
            loss -= probs[i * c + targets[i]].max(1e-30).ln();
        }
        drop(data);
        let denom = counted.max(1) as f32;
        loss /= denom;

        let parent = self.clone();
        let targets = targets.to_vec();
        Tensor::from_op(
            vec![loss],
            Shape::default(),
            vec![self.clone()],
            Box::new(move |outt| {
                let g = outt.out_grad()[0];
                let mut gx = crate::pool::PooledBuf::zeroed(n * c);
                let scale = g / denom;
                for i in 0..n {
                    if ignore_index == Some(targets[i]) {
                        continue;
                    }
                    for j in 0..c {
                        let indicator = if j == targets[i] { 1.0 } else { 0.0 };
                        gx[i * c + j] = scale * (probs[i * c + j] - indicator);
                    }
                }
                if parent.requires_grad() {
                    parent.accumulate_grad(&gx);
                }
            }),
        )
    }

    /// Gather rows of a `(V, D)` matrix by index: the embedding forward.
    /// Output is `(ids.len(), D)`; backward scatter-adds into the rows.
    pub fn index_select0(&self, ids: &[usize]) -> Tensor {
        assert_eq!(self.rank(), 2, "index_select0 expects (V, D)");
        let (v, d) = (self.dims()[0], self.dims()[1]);
        let data = self.data();
        let mut out = crate::pool::take_cleared(ids.len() * d);
        for &id in ids {
            assert!(id < v, "row index {id} out of range 0..{v}");
            out.extend_from_slice(&data[id * d..(id + 1) * d]);
        }
        drop(data);
        let parent = self.clone();
        let ids = ids.to_vec();
        Tensor::from_op(
            out,
            Shape(vec![ids.len(), d]),
            vec![self.clone()],
            Box::new(move |outt| {
                let g = outt.out_grad();
                let g: &[f32] = &g;
                let mut gx = crate::pool::PooledBuf::zeroed(parent.numel());
                for (i, &id) in ids.iter().enumerate() {
                    let src = &g[i * d..(i + 1) * d];
                    let dst = &mut gx[id * d..(id + 1) * d];
                    for (dv, &sv) in dst.iter_mut().zip(src) {
                        *dv += sv;
                    }
                }
                if parent.requires_grad() {
                    parent.accumulate_grad(&gx);
                }
            }),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 1.0, 1.0, 1.0], [2, 3]);
        let y = x.softmax();
        let d = y.to_vec();
        let s0: f32 = d[0..3].iter().sum();
        let s1: f32 = d[3..6].iter().sum();
        assert!((s0 - 1.0).abs() < 1e-6 && (s1 - 1.0).abs() < 1e-6);
        assert!((d[3] - 1.0 / 3.0).abs() < 1e-6);
        assert!(d[2] > d[1] && d[1] > d[0]);
    }

    #[test]
    fn softmax_stable_for_large_logits() {
        let x = Tensor::from_vec(vec![1000.0, 1001.0], [1, 2]);
        let y = x.softmax().to_vec();
        assert!(y.iter().all(|v| v.is_finite()));
        assert!((y[0] + y[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn softmax_gradcheck() {
        let xv = vec![0.2f32, -0.4, 0.9];
        let weights = [1.0f32, 2.0, 3.0]; // project output to scalar
        let f = |xv: &[f32]| -> f32 {
            let x = Tensor::from_vec(xv.to_vec(), [1, 3]);
            let y = x.softmax();
            y.to_vec().iter().zip(&weights).map(|(&a, &w)| a * w).sum()
        };
        let x = Tensor::param(xv.clone(), [1, 3]);
        let y = x.softmax();
        y.mul(&Tensor::from_vec(weights.to_vec(), [1, 3]))
            .sum()
            .backward();
        let ga = x.grad().unwrap();
        let h = 1e-3;
        for i in 0..3 {
            let mut p = xv.clone();
            p[i] += h;
            let mut m = xv.clone();
            m[i] -= h;
            let num = (f(&p) - f(&m)) / (2.0 * h);
            assert!((ga[i] - num).abs() < 1e-3, "{} vs {}", ga[i], num);
        }
    }

    #[test]
    fn log_softmax_matches_ln_of_softmax() {
        let x = Tensor::from_vec(vec![0.5, -1.0, 2.0], [1, 3]);
        let a = x.log_softmax().to_vec();
        let b: Vec<f32> = x.softmax().to_vec().iter().map(|v| v.ln()).collect();
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn cross_entropy_uniform_logits() {
        // Uniform logits over C classes: loss = ln(C).
        let x = Tensor::param(vec![0.0; 6], [2, 3]);
        let loss = x.cross_entropy_logits(&[0, 2], None);
        assert!((loss.item() - 3.0f32.ln()).abs() < 1e-5);
        loss.backward();
        let g = x.grad().unwrap();
        // grad = (softmax - onehot)/N
        assert!((g[0] - (1.0 / 3.0 - 1.0) / 2.0).abs() < 1e-6);
        assert!((g[1] - (1.0 / 3.0) / 2.0).abs() < 1e-6);
    }

    #[test]
    fn cross_entropy_ignore_index() {
        let x = Tensor::param(vec![0.0; 6], [2, 3]);
        // Second row ignored: loss over first row only.
        let loss = x.cross_entropy_logits(&[0, 1], Some(1));
        assert!((loss.item() - 3.0f32.ln()).abs() < 1e-5);
        loss.backward();
        let g = x.grad().unwrap();
        assert!(g[3..6].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn cross_entropy_perfect_prediction_near_zero() {
        let x = Tensor::from_vec(vec![20.0, 0.0, 0.0], [1, 3]);
        let loss = x.cross_entropy_logits(&[0], None);
        assert!(loss.item() < 1e-6);
    }

    #[test]
    fn index_select0_gather_scatter() {
        let w = Tensor::param(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], [3, 2]);
        let e = w.index_select0(&[2, 0, 2]);
        assert_eq!(e.dims(), &[3, 2]);
        assert_eq!(e.to_vec(), vec![5.0, 6.0, 1.0, 2.0, 5.0, 6.0]);
        e.sum().backward();
        // Row 2 selected twice → grad 2; row 0 once; row 1 never.
        assert_eq!(w.grad().unwrap(), vec![1.0, 1.0, 0.0, 0.0, 2.0, 2.0]);
    }

    #[test]
    fn custom_op_roundtrip() {
        // Define y = 2x via the public custom-op API and check gradients.
        let x = Tensor::param(vec![1.0, 2.0], [2]);
        let data: Vec<f32> = x.data().iter().map(|v| v * 2.0).collect();
        let xc = x.clone();
        let y = Tensor::custom(data, [2], vec![x.clone()], move |out| {
            let g = out.grad().expect("grad present");
            let gx: Vec<f32> = g.iter().map(|v| v * 2.0).collect();
            if xc.requires_grad() {
                xc.accumulate_grad(&gx);
            }
        });
        y.sum().backward();
        assert_eq!(x.grad().unwrap(), vec![2.0, 2.0]);
    }
}
