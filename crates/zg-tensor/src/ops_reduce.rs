//! Reductions: full and per-axis sums, means, and maxima.

use crate::shape::Shape;
use crate::tensor::Tensor;

/// Decompose a shape around `axis` into (outer, axis_len, inner) extents so a
/// reduction is three nested loops over contiguous memory.
fn axis_extents(shape: &Shape, axis: usize) -> (usize, usize, usize) {
    let dims = shape.dims();
    let outer: usize = dims[..axis].iter().product();
    let inner: usize = dims[axis + 1..].iter().product();
    (outer, dims[axis], inner)
}

fn reduced_shape(shape: &Shape, axis: usize, keepdim: bool) -> Shape {
    let mut dims = shape.dims().to_vec();
    if keepdim {
        dims[axis] = 1;
    } else {
        dims.remove(axis);
    }
    Shape(dims)
}

impl Tensor {
    /// Sum of all elements (rank-0 result).
    pub fn sum(&self) -> Tensor {
        let total: f32 = self.data().iter().sum();
        let parent = self.clone();
        Tensor::from_op(
            vec![total],
            Shape::default(),
            vec![self.clone()],
            Box::new(move |out| {
                let g = out.out_grad()[0];
                if parent.requires_grad() {
                    parent.accumulate_grad(&crate::pool::PooledBuf::filled(parent.numel(), g));
                }
            }),
        )
    }

    /// Mean of all elements (rank-0 result).
    pub fn mean(&self) -> Tensor {
        let n = self.numel() as f32;
        self.sum().div_scalar(n)
    }

    /// Sum along `axis` (negative axes allowed).
    pub fn sum_axis(&self, axis: isize, keepdim: bool) -> Tensor {
        let ax = self.shape().resolve_axis(axis);
        let (outer, len, inner) = axis_extents(self.shape(), ax);
        let data = self.data();
        let mut out = crate::pool::take_zeroed(outer * inner);
        for o in 0..outer {
            for a in 0..len {
                let base = (o * len + a) * inner;
                let obase = o * inner;
                for i in 0..inner {
                    out[obase + i] += data[base + i];
                }
            }
        }
        drop(data);
        let parent = self.clone();
        Tensor::from_op(
            out,
            reduced_shape(self.shape(), ax, keepdim),
            vec![self.clone()],
            Box::new(move |outt| {
                let g = outt.out_grad();
                let g: &[f32] = &g;
                // Scratch is safe here: the copy loop covers every element
                // of the parent exactly once.
                let mut gx = crate::pool::PooledBuf::scratch(parent.numel());
                for o in 0..outer {
                    for a in 0..len {
                        let base = (o * len + a) * inner;
                        let obase = o * inner;
                        gx[base..base + inner].copy_from_slice(&g[obase..obase + inner]);
                    }
                }
                if parent.requires_grad() {
                    parent.accumulate_grad(&gx);
                }
            }),
        )
    }

    /// Mean along `axis`.
    pub fn mean_axis(&self, axis: isize, keepdim: bool) -> Tensor {
        let ax = self.shape().resolve_axis(axis);
        let len = self.dims()[ax] as f32;
        self.sum_axis(axis, keepdim).div_scalar(len)
    }

    /// Maximum along `axis`. Gradient flows to the (first) argmax only.
    pub fn max_axis(&self, axis: isize, keepdim: bool) -> Tensor {
        let ax = self.shape().resolve_axis(axis);
        let (outer, len, inner) = axis_extents(self.shape(), ax);
        let data = self.data();
        let mut out = crate::pool::take_scratch(outer * inner);
        out.fill(f32::NEG_INFINITY);
        let mut arg = vec![0usize; outer * inner];
        for o in 0..outer {
            for a in 0..len {
                let base = (o * len + a) * inner;
                for i in 0..inner {
                    let v = data[base + i];
                    let oi = o * inner + i;
                    if v > out[oi] {
                        out[oi] = v;
                        arg[oi] = a;
                    }
                }
            }
        }
        drop(data);
        let parent = self.clone();
        Tensor::from_op(
            out,
            reduced_shape(self.shape(), ax, keepdim),
            vec![self.clone()],
            Box::new(move |outt| {
                let g = outt.out_grad();
                let g: &[f32] = &g;
                let mut gx = crate::pool::PooledBuf::zeroed(parent.numel());
                for o in 0..outer {
                    for i in 0..inner {
                        let oi = o * inner + i;
                        gx[(o * len + arg[oi]) * inner + i] = g[oi];
                    }
                }
                if parent.requires_grad() {
                    parent.accumulate_grad(&gx);
                }
            }),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_and_mean_scalar() {
        let x = Tensor::param(vec![1.0, 2.0, 3.0, 4.0], [2, 2]);
        assert_eq!(x.sum().item(), 10.0);
        assert_eq!(x.mean().item(), 2.5);
        x.mean().backward();
        assert_eq!(x.grad().unwrap(), vec![0.25; 4]);
    }

    #[test]
    fn sum_axis_rows_and_cols() {
        let x = Tensor::param(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], [2, 3]);
        let rows = x.sum_axis(1, false);
        assert_eq!(rows.dims(), &[2]);
        assert_eq!(rows.to_vec(), vec![6.0, 15.0]);
        let cols = x.sum_axis(0, false);
        assert_eq!(cols.to_vec(), vec![5.0, 7.0, 9.0]);
    }

    #[test]
    fn sum_axis_keepdim_shape() {
        let x = Tensor::zeros([2, 3, 4]);
        assert_eq!(x.sum_axis(1, true).dims(), &[2, 1, 4]);
        assert_eq!(x.sum_axis(-1, false).dims(), &[2, 3]);
    }

    #[test]
    fn sum_axis_backward_broadcasts() {
        let x = Tensor::param(vec![1.0; 6], [2, 3]);
        let s = x.sum_axis(1, false); // [2]
        s.mul(&Tensor::from_vec(vec![1.0, 10.0], [2]))
            .sum()
            .backward();
        assert_eq!(x.grad().unwrap(), vec![1.0, 1.0, 1.0, 10.0, 10.0, 10.0]);
    }

    #[test]
    fn mean_axis_values() {
        let x = Tensor::from_vec(vec![2.0, 4.0, 6.0, 8.0], [2, 2]);
        assert_eq!(x.mean_axis(-1, false).to_vec(), vec![3.0, 7.0]);
    }

    #[test]
    fn max_axis_values_and_grad() {
        let x = Tensor::param(vec![1.0, 5.0, 3.0, 9.0, 2.0, 4.0], [2, 3]);
        let m = x.max_axis(1, false);
        assert_eq!(m.to_vec(), vec![5.0, 9.0]);
        m.sum().backward();
        assert_eq!(x.grad().unwrap(), vec![0.0, 1.0, 0.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn max_axis_keepdim_for_softmax_stability() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]);
        let m = x.max_axis(-1, true);
        assert_eq!(m.dims(), &[2, 1]);
        // Subtraction broadcasts back over the reduced axis.
        let centered = x.sub(&m);
        assert_eq!(centered.to_vec(), vec![-1.0, 0.0, -1.0, 0.0]);
    }

    #[test]
    fn max_axis_ties_take_first() {
        let x = Tensor::param(vec![7.0, 7.0], [1, 2]);
        let m = x.max_axis(1, false);
        m.sum().backward();
        assert_eq!(x.grad().unwrap(), vec![1.0, 0.0]);
    }
}
