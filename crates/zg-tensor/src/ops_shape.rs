//! Shape-manipulating operations: reshape, permute/transpose, slicing,
//! concatenation, and broadcasting views (all materialized — the engine is
//! contiguous-only, which keeps kernels and backward passes simple).

use crate::shape::{Shape, StridedIter};
use crate::tensor::Tensor;

/// Split a gather layout into `(outer axes, trailing run)`: the largest
/// trailing run of offsets that is contiguous (`o..o + run`), so gathers
/// and scatters can move slices instead of single elements. Size-1 axes
/// fold into the run regardless of stride (their stride is never stepped).
fn trailing_run(dims: &[usize], strides: &[usize]) -> (usize, usize) {
    let mut run = 1usize;
    let mut split = dims.len();
    while split > 0 {
        let d = split - 1;
        if dims[d] != 1 && strides[d] != run {
            break;
        }
        run *= dims[d];
        split = d;
    }
    (split, run)
}

/// Gather `data` into `out` following `(dims, strides)` in ascending output
/// order. With fast paths on, trailing contiguous runs are copied as slices
/// and a trailing 2-D transpose is gathered blockwise; both visit exactly
/// the offsets of the strided reference loop, in the same order.
fn gather_into(out: &mut Vec<f32>, data: &[f32], dims: &[usize], strides: &[usize]) {
    if crate::fastpath::op_fast_paths() {
        let (split, run) = trailing_run(dims, strides);
        if run > 1 {
            for o in StridedIter::new(&dims[..split], &strides[..split]) {
                out.extend_from_slice(&data[o..o + run]);
            }
            return;
        }
        let rank = dims.len();
        if rank >= 2 && strides[rank - 2] == 1 && strides[rank - 1] == dims[rank - 2] {
            // Trailing transpose: each base block is a contiguous R×C
            // matrix read column-major (e.g. `t()` for attention scores).
            let (rn, cn) = (dims[rank - 2], dims[rank - 1]);
            for base in StridedIter::new(&dims[..rank - 2], &strides[..rank - 2]) {
                let block = &data[base..base + rn * cn];
                for r in 0..rn {
                    out.extend((0..cn).map(|c| block[c * rn + r]));
                }
            }
            return;
        }
    }
    out.extend(StridedIter::new(dims, strides).map(|o| data[o]));
}

/// Scatter-add `g` back through the same mapping: `gx[offset] += g[i]`.
/// Offsets repeat across outer steps when `strides` contains broadcast
/// zeros; both fast arms preserve the reference loop's ascending-`i`
/// accumulation order per slot, so sums are bit-identical.
fn scatter_add(gx: &mut [f32], g: &[f32], dims: &[usize], strides: &[usize]) {
    if crate::fastpath::op_fast_paths() {
        let (split, run) = trailing_run(dims, strides);
        if run > 1 {
            for (i, o) in StridedIter::new(&dims[..split], &strides[..split]).enumerate() {
                for (dst, &v) in gx[o..o + run].iter_mut().zip(&g[i * run..(i + 1) * run]) {
                    *dst += v;
                }
            }
            return;
        }
        let rank = dims.len();
        if rank >= 2 && strides[rank - 2] == 1 && strides[rank - 1] == dims[rank - 2] {
            let (rn, cn) = (dims[rank - 2], dims[rank - 1]);
            let outer = StridedIter::new(&dims[..rank - 2], &strides[..rank - 2]);
            for (bi, base) in outer.enumerate() {
                let gb = &g[bi * rn * cn..(bi + 1) * rn * cn];
                let block = &mut gx[base..base + rn * cn];
                for r in 0..rn {
                    for c in 0..cn {
                        block[c * rn + r] += gb[r * cn + c];
                    }
                }
            }
            return;
        }
    }
    for (i, o) in StridedIter::new(dims, strides).enumerate() {
        gx[o] += g[i];
    }
}

impl Tensor {
    /// Reinterpret the data with a new shape of the same element count.
    pub fn reshape(&self, shape: impl Into<Shape>) -> Tensor {
        let shape = shape.into();
        assert_eq!(
            self.numel(),
            shape.numel(),
            "reshape {} -> {shape} changes element count",
            self.shape()
        );
        let parent = self.clone();
        let src = self.data();
        let mut data = crate::pool::take_scratch(src.len());
        data.copy_from_slice(&src);
        drop(src);
        Tensor::from_op(
            data,
            shape,
            vec![self.clone()],
            Box::new(move |out| {
                let g = out.out_grad();
                let g: &[f32] = &g;
                if parent.requires_grad() {
                    parent.accumulate_grad(g);
                }
            }),
        )
    }

    /// Insert a size-1 dimension at `axis` (0..=rank).
    pub fn unsqueeze(&self, axis: usize) -> Tensor {
        let mut dims = self.dims().to_vec();
        assert!(axis <= dims.len());
        dims.insert(axis, 1);
        self.reshape(dims)
    }

    /// Remove a size-1 dimension at `axis`.
    pub fn squeeze(&self, axis: usize) -> Tensor {
        let mut dims = self.dims().to_vec();
        assert_eq!(dims[axis], 1, "squeeze on non-unit axis {axis}");
        dims.remove(axis);
        self.reshape(dims)
    }

    /// Reorder dimensions by `axes` (a permutation of `0..rank`).
    pub fn permute(&self, axes: &[usize]) -> Tensor {
        let rank = self.rank();
        assert_eq!(axes.len(), rank, "permute needs all axes");
        let mut seen = vec![false; rank];
        for &a in axes {
            assert!(a < rank && !seen[a], "invalid permutation {axes:?}");
            seen[a] = true;
        }
        let src_dims = self.dims();
        let src_strides = self.shape().strides();
        let out_dims: Vec<usize> = axes.iter().map(|&a| src_dims[a]).collect();
        let gather_strides: Vec<usize> = axes.iter().map(|&a| src_strides[a]).collect();
        let data = self.data();
        let mut out = crate::pool::take_cleared(data.len());
        gather_into(&mut out, &data, &out_dims, &gather_strides);
        drop(data);

        let parent = self.clone();
        let axes_owned = axes.to_vec();
        Tensor::from_op(
            out,
            Shape(out_dims),
            vec![self.clone()],
            Box::new(move |outt| {
                let g = outt.out_grad();
                let g: &[f32] = &g;
                // Scatter back through the same index mapping.
                let src_strides = parent.shape().strides();
                let out_dims = outt.dims();
                let gather_strides: Vec<usize> =
                    axes_owned.iter().map(|&a| src_strides[a]).collect();
                let mut gx = crate::pool::PooledBuf::zeroed(parent.numel());
                scatter_add(&mut gx, g, out_dims, &gather_strides);
                if parent.requires_grad() {
                    parent.accumulate_grad(&gx);
                }
            }),
        )
    }

    /// Swap two axes (negative indices allowed).
    pub fn transpose(&self, a: isize, b: isize) -> Tensor {
        let a = self.shape().resolve_axis(a);
        let b = self.shape().resolve_axis(b);
        let mut axes: Vec<usize> = (0..self.rank()).collect();
        axes.swap(a, b);
        self.permute(&axes)
    }

    /// Matrix transpose of the last two dims.
    pub fn t(&self) -> Tensor {
        self.transpose(-2, -1)
    }

    /// Slice `len` elements starting at `start` along `axis`.
    pub fn narrow(&self, axis: isize, start: usize, len: usize) -> Tensor {
        let ax = self.shape().resolve_axis(axis);
        let dims = self.dims();
        assert!(
            start + len <= dims[ax],
            "narrow [{start}, {start}+{len}) out of bounds for axis {ax} of {}",
            self.shape()
        );
        let outer: usize = dims[..ax].iter().product();
        let inner: usize = dims[ax + 1..].iter().product();
        let axis_len = dims[ax];
        let data = self.data();
        let mut out = crate::pool::take_cleared(outer * len * inner);
        for o in 0..outer {
            let base = (o * axis_len + start) * inner;
            out.extend_from_slice(&data[base..base + len * inner]);
        }
        drop(data);
        let mut out_dims = dims.to_vec();
        out_dims[ax] = len;

        let parent = self.clone();
        Tensor::from_op(
            out,
            Shape(out_dims),
            vec![self.clone()],
            Box::new(move |outt| {
                let g = outt.out_grad();
                let g: &[f32] = &g;
                let mut gx = crate::pool::PooledBuf::zeroed(parent.numel());
                for o in 0..outer {
                    let dst = (o * axis_len + start) * inner;
                    let src = o * len * inner;
                    gx[dst..dst + len * inner].copy_from_slice(&g[src..src + len * inner]);
                }
                if parent.requires_grad() {
                    parent.accumulate_grad(&gx);
                }
            }),
        )
    }

    /// Concatenate tensors along `axis`. All other dims must match.
    pub fn concat(tensors: &[Tensor], axis: isize) -> Tensor {
        assert!(!tensors.is_empty(), "concat of zero tensors");
        let ax = tensors[0].shape().resolve_axis(axis);
        let rank = tensors[0].rank();
        for t in tensors {
            assert_eq!(t.rank(), rank, "concat rank mismatch");
            for d in 0..rank {
                if d != ax {
                    assert_eq!(
                        t.dims()[d],
                        tensors[0].dims()[d],
                        "concat non-axis dim mismatch at {d}"
                    );
                }
            }
        }
        let dims = tensors[0].dims();
        let outer: usize = dims[..ax].iter().product();
        let inner: usize = dims[ax + 1..].iter().product();
        let lens: Vec<usize> = tensors.iter().map(|t| t.dims()[ax]).collect();
        let total_len: usize = lens.iter().sum();
        let mut out = crate::pool::take_cleared(outer * total_len * inner);
        for o in 0..outer {
            for (t, &l) in tensors.iter().zip(&lens) {
                let d = t.data();
                let base = o * l * inner;
                out.extend_from_slice(&d[base..base + l * inner]);
            }
        }
        let mut out_dims = dims.to_vec();
        out_dims[ax] = total_len;

        let parents: Vec<Tensor> = tensors.to_vec();
        let parents_cap = parents.clone();
        Tensor::from_op(
            out,
            Shape(out_dims),
            parents,
            Box::new(move |outt| {
                let g = outt.out_grad();
                let g: &[f32] = &g;
                let mut grads: Vec<crate::pool::PooledBuf> = parents_cap
                    .iter()
                    .map(|t| crate::pool::PooledBuf::zeroed(t.numel()))
                    .collect();
                let mut cursor = 0usize;
                for o in 0..outer {
                    for (ti, &l) in lens.iter().enumerate() {
                        let dst = o * l * inner;
                        grads[ti][dst..dst + l * inner]
                            .copy_from_slice(&g[cursor..cursor + l * inner]);
                        cursor += l * inner;
                    }
                }
                for (t, gx) in parents_cap.iter().zip(&grads) {
                    if t.requires_grad() {
                        t.accumulate_grad(gx);
                    }
                }
            }),
        )
    }

    /// Stack rank-equal tensors along a new leading axis.
    pub fn stack(tensors: &[Tensor]) -> Tensor {
        let unsqueezed: Vec<Tensor> = tensors.iter().map(|t| t.unsqueeze(0)).collect();
        Tensor::concat(&unsqueezed, 0)
    }

    /// Materialize a broadcast of `self` to `target`.
    pub fn broadcast_to(&self, target: impl Into<Shape>) -> Tensor {
        let target = target.into();
        assert!(
            self.shape().broadcasts_to(&target),
            "{} does not broadcast to {target}",
            self.shape()
        );
        let strides = self.shape().broadcast_strides(&target);
        let data = self.data();
        let mut out = crate::pool::take_cleared(target.numel());
        gather_into(&mut out, &data, target.dims(), &strides);
        drop(data);
        let parent = self.clone();
        Tensor::from_op(
            out,
            target,
            vec![self.clone()],
            Box::new(move |outt| {
                let g = outt.out_grad();
                let g: &[f32] = &g;
                let strides = parent.shape().broadcast_strides(outt.shape());
                let mut gx = crate::pool::PooledBuf::zeroed(parent.numel());
                scatter_add(&mut gx, g, outt.dims(), &strides);
                if parent.requires_grad() {
                    parent.accumulate_grad(&gx);
                }
            }),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reshape_roundtrip_grad() {
        let x = Tensor::param(vec![1.0, 2.0, 3.0, 4.0], [2, 2]);
        let y = x.reshape([4]);
        assert_eq!(y.dims(), &[4]);
        y.mul(&Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [4]))
            .sum()
            .backward();
        assert_eq!(x.grad().unwrap(), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "changes element count")]
    fn reshape_bad_count_panics() {
        Tensor::zeros([2, 2]).reshape([3]);
    }

    #[test]
    fn transpose_2d() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], [2, 3]);
        let y = x.t();
        assert_eq!(y.dims(), &[3, 2]);
        assert_eq!(y.to_vec(), vec![1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
    }

    #[test]
    fn transpose_batched_last_two() {
        let x = Tensor::from_vec((0..12).map(|v| v as f32).collect(), [2, 2, 3]);
        let y = x.t();
        assert_eq!(y.dims(), &[2, 3, 2]);
        assert_eq!(y.at(&[1, 2, 0]), x.at(&[1, 0, 2]));
    }

    #[test]
    fn permute_grad_scatters() {
        let x = Tensor::param(vec![1.0, 2.0, 3.0, 4.0], [2, 2]);
        let y = x.t();
        y.mul(&Tensor::from_vec(vec![10.0, 20.0, 30.0, 40.0], [2, 2]))
            .sum()
            .backward();
        // y[i,j] = x[j,i]; grads map back transposed.
        assert_eq!(x.grad().unwrap(), vec![10.0, 30.0, 20.0, 40.0]);
    }

    #[test]
    fn narrow_middle() {
        let x = Tensor::param((0..12).map(|v| v as f32).collect(), [3, 4]);
        let y = x.narrow(1, 1, 2);
        assert_eq!(y.dims(), &[3, 2]);
        assert_eq!(y.to_vec(), vec![1.0, 2.0, 5.0, 6.0, 9.0, 10.0]);
        y.sum().backward();
        let g = x.grad().unwrap();
        assert_eq!(g, vec![0., 1., 1., 0., 0., 1., 1., 0., 0., 1., 1., 0.]);
    }

    #[test]
    fn concat_axis0_and_axis1() {
        let a = Tensor::param(vec![1.0, 2.0], [1, 2]);
        let b = Tensor::param(vec![3.0, 4.0], [1, 2]);
        let c0 = Tensor::concat(&[a.clone(), b.clone()], 0);
        assert_eq!(c0.dims(), &[2, 2]);
        assert_eq!(c0.to_vec(), vec![1.0, 2.0, 3.0, 4.0]);
        let c1 = Tensor::concat(&[a.clone(), b.clone()], 1);
        assert_eq!(c1.dims(), &[1, 4]);
        assert_eq!(c1.to_vec(), vec![1.0, 2.0, 3.0, 4.0]);
        c1.mul(&Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [1, 4]))
            .sum()
            .backward();
        assert_eq!(a.grad().unwrap(), vec![1.0, 2.0]);
        assert_eq!(b.grad().unwrap(), vec![3.0, 4.0]);
    }

    #[test]
    fn stack_adds_axis() {
        let a = Tensor::from_vec(vec![1.0, 2.0], [2]);
        let b = Tensor::from_vec(vec![3.0, 4.0], [2]);
        let s = Tensor::stack(&[a, b]);
        assert_eq!(s.dims(), &[2, 2]);
        assert_eq!(s.to_vec(), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn broadcast_to_materializes() {
        let x = Tensor::param(vec![1.0, 2.0], [2, 1]);
        let y = x.broadcast_to([2, 3]);
        assert_eq!(y.to_vec(), vec![1.0, 1.0, 1.0, 2.0, 2.0, 2.0]);
        y.sum().backward();
        assert_eq!(x.grad().unwrap(), vec![3.0, 3.0]);
    }

    #[test]
    fn squeeze_unsqueeze() {
        let x = Tensor::zeros([2, 3]);
        assert_eq!(x.unsqueeze(1).dims(), &[2, 1, 3]);
        assert_eq!(x.unsqueeze(1).squeeze(1).dims(), &[2, 3]);
    }
}
