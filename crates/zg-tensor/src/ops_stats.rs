//! Statistical reductions: variance, standard deviation, min, and
//! argmax/argmin (the latter as plain index vectors — selection is not
//! differentiable).

use crate::shape::Shape;
use crate::tensor::Tensor;

impl Tensor {
    /// Variance along `axis` (population variance, divisor `n`).
    /// Differentiable: composed from mean/square primitives.
    pub fn var_axis(&self, axis: isize, keepdim: bool) -> Tensor {
        let mean = self.mean_axis(axis, true);
        let centered = self.sub(&mean);
        centered.square().mean_axis(axis, keepdim)
    }

    /// Standard deviation along `axis` (population, divisor `n`).
    pub fn std_axis(&self, axis: isize, keepdim: bool) -> Tensor {
        // Epsilon keeps the sqrt gradient finite for constant rows.
        self.var_axis(axis, keepdim).add_scalar(1e-12).sqrt()
    }

    /// Minimum along `axis`. Gradient flows to the (first) argmin.
    pub fn min_axis(&self, axis: isize, keepdim: bool) -> Tensor {
        self.neg().max_axis(axis, keepdim).neg()
    }

    /// Argmax along the last axis, returned as plain indices
    /// (`outer`-shaped, one entry per row). Not differentiable.
    pub fn argmax_last(&self) -> Vec<usize> {
        let dims = self.dims();
        // INVARIANT: rank >= 1 is the documented precondition; a rank-0
        // input is a caller bug and must fail loudly.
        let len = *dims.last().expect("rank >= 1");
        let outer = self.numel() / len;
        let data = self.data();
        (0..outer)
            .map(|o| {
                let row = &data[o * len..(o + 1) * len];
                row.iter()
                    .enumerate()
                    // INVARIANT: NaN in tensor data is a caller bug; the
                    // panic here is the documented argmax contract.
                    .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite values"))
                    .map(|(i, _)| i)
                    // INVARIANT: len >= 1 (checked above), so rows are
                    // non-empty.
                    .expect("non-empty row")
            })
            .collect()
    }

    /// Argmin along the last axis, as plain indices.
    pub fn argmin_last(&self) -> Vec<usize> {
        let dims = self.dims();
        // INVARIANT: rank >= 1 is the documented precondition; a rank-0
        // input is a caller bug and must fail loudly.
        let len = *dims.last().expect("rank >= 1");
        let outer = self.numel() / len;
        let data = self.data();
        (0..outer)
            .map(|o| {
                let row = &data[o * len..(o + 1) * len];
                row.iter()
                    .enumerate()
                    // INVARIANT: NaN in tensor data is a caller bug; the
                    // panic here is the documented argmin contract.
                    .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite values"))
                    .map(|(i, _)| i)
                    // INVARIANT: len >= 1 (checked above), so rows are
                    // non-empty.
                    .expect("non-empty row")
            })
            .collect()
    }

    /// L2 norm of the whole tensor (rank-0 result). Differentiable.
    pub fn l2_norm(&self) -> Tensor {
        self.square().sum().add_scalar(1e-12).sqrt()
    }

    /// Reshape-free check helper: shape of the reduced result.
    pub fn reduced_shape(&self, axis: isize, keepdim: bool) -> Shape {
        let ax = self.shape().resolve_axis(axis);
        let mut dims = self.dims().to_vec();
        if keepdim {
            dims[ax] = 1;
        } else {
            dims.remove(ax);
        }
        Shape(dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variance_matches_manual() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [1, 4]);
        let v = x.var_axis(-1, false);
        assert!((v.item() - 1.25).abs() < 1e-6); // population var of 1..4
        let s = x.std_axis(-1, false);
        assert!((s.item() - 1.25f32.sqrt()).abs() < 1e-5);
    }

    #[test]
    fn variance_grad_flows() {
        let x = Tensor::param(vec![1.0, 3.0], [1, 2]);
        x.var_axis(-1, false).sum().backward();
        let g = x.grad().unwrap();
        // d var/dx_i = 2 (x_i - mean)/n : [-1, 1]
        assert!((g[0] + 1.0).abs() < 1e-5 && (g[1] - 1.0).abs() < 1e-5);
    }

    #[test]
    fn min_axis_values_and_grad() {
        let x = Tensor::param(vec![5.0, 2.0, 8.0, 1.0, 9.0, 4.0], [2, 3]);
        let m = x.min_axis(1, false);
        assert_eq!(m.to_vec(), vec![2.0, 1.0]);
        m.sum().backward();
        assert_eq!(x.grad().unwrap(), vec![0.0, 1.0, 0.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn argmax_argmin_rows() {
        let x = Tensor::from_vec(vec![1.0, 9.0, 3.0, 7.0, 2.0, 5.0], [2, 3]);
        assert_eq!(x.argmax_last(), vec![1, 0]);
        assert_eq!(x.argmin_last(), vec![0, 1]);
    }

    #[test]
    fn l2_norm_pythagorean() {
        let x = Tensor::param(vec![3.0, 4.0], [2]);
        let n = x.l2_norm();
        assert!((n.item() - 5.0).abs() < 1e-5);
        n.backward();
        let g = x.grad().unwrap();
        assert!((g[0] - 0.6).abs() < 1e-5 && (g[1] - 0.8).abs() < 1e-5);
    }

    #[test]
    fn std_of_constant_row_is_zero_not_nan() {
        let x = Tensor::param(vec![2.0, 2.0, 2.0], [1, 3]);
        let s = x.std_axis(-1, false);
        assert!(s.item() < 1e-5);
        s.sum().backward();
        assert!(x.grad().unwrap().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn reduced_shape_helper() {
        let x = Tensor::zeros([2, 3, 4]);
        assert_eq!(x.reduced_shape(1, false).dims(), &[2, 4]);
        assert_eq!(x.reduced_shape(-1, true).dims(), &[2, 3, 1]);
    }
}
