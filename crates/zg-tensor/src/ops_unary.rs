//! Unary elementwise operations and tensor-scalar arithmetic.

use crate::tensor::Tensor;

/// Build a unary elementwise op.
///
/// `f` computes the forward value; `df` computes the local derivative given
/// `(input, output)` — passing the output lets activations like tanh and
/// sigmoid reuse the forward result.
fn unary_op(x: &Tensor, f: impl Fn(f32) -> f32, df: impl Fn(f32, f32) -> f32 + 'static) -> Tensor {
    let xd = x.data();
    let mut data = crate::pool::take_cleared(xd.len());
    data.extend(xd.iter().map(|&v| f(v)));
    drop(xd);
    let parent = x.clone();
    Tensor::from_op(
        data,
        x.shape().clone(),
        vec![x.clone()],
        Box::new(move |out| {
            let g = out.out_grad();
            let g: &[f32] = &g;
            let xd = parent.data();
            let od = out.data();
            // Scratch: every element is written by the zip below.
            let mut gx = crate::pool::PooledBuf::scratch(g.len());
            for (o, (&gi, (&xi, &oi))) in gx.iter_mut().zip(g.iter().zip(xd.iter().zip(od.iter())))
            {
                *o = gi * df(xi, oi);
            }
            drop(xd);
            drop(od);
            parent.accumulate_grad(&gx);
        }),
    )
}

impl Tensor {
    /// Elementwise negation.
    pub fn neg(&self) -> Tensor {
        unary_op(self, |x| -x, |_, _| -1.0)
    }

    /// Elementwise exponential.
    pub fn exp(&self) -> Tensor {
        unary_op(self, |x| x.exp(), |_, y| y)
    }

    /// Elementwise natural logarithm.
    pub fn ln(&self) -> Tensor {
        unary_op(self, |x| x.ln(), |x, _| 1.0 / x)
    }

    /// Elementwise square root.
    pub fn sqrt(&self) -> Tensor {
        unary_op(self, |x| x.sqrt(), |_, y| 0.5 / y)
    }

    /// Elementwise reciprocal square root `1/sqrt(x)`.
    pub fn rsqrt(&self) -> Tensor {
        unary_op(self, |x| 1.0 / x.sqrt(), |x, y| -0.5 * y / x)
    }

    /// Elementwise reciprocal.
    pub fn recip(&self) -> Tensor {
        unary_op(self, |x| 1.0 / x, |_, y| -y * y)
    }

    /// Elementwise square.
    pub fn square(&self) -> Tensor {
        unary_op(self, |x| x * x, |x, _| 2.0 * x)
    }

    /// Elementwise absolute value. Gradient at 0 is 0.
    pub fn abs(&self) -> Tensor {
        unary_op(
            self,
            |x| x.abs(),
            |x, _| {
                if x > 0.0 {
                    1.0
                } else if x < 0.0 {
                    -1.0
                } else {
                    0.0
                }
            },
        )
    }

    /// Elementwise power with a constant exponent.
    pub fn powf(&self, p: f32) -> Tensor {
        unary_op(self, move |x| x.powf(p), move |x, _| p * x.powf(p - 1.0))
    }

    /// Elementwise hyperbolic tangent.
    pub fn tanh(&self) -> Tensor {
        unary_op(self, |x| x.tanh(), |_, y| 1.0 - y * y)
    }

    /// Elementwise logistic sigmoid.
    pub fn sigmoid(&self) -> Tensor {
        unary_op(self, |x| 1.0 / (1.0 + (-x).exp()), |_, y| y * (1.0 - y))
    }

    /// SiLU (a.k.a. swish): `x * sigmoid(x)` — Mistral's activation (Table 3).
    pub fn silu(&self) -> Tensor {
        unary_op(
            self,
            |x| x / (1.0 + (-x).exp()),
            |x, _| {
                let s = 1.0 / (1.0 + (-x).exp());
                s * (1.0 + x * (1.0 - s))
            },
        )
    }

    /// Rectified linear unit.
    pub fn relu(&self) -> Tensor {
        unary_op(self, |x| x.max(0.0), |x, _| if x > 0.0 { 1.0 } else { 0.0 })
    }

    /// Clamp values into `[lo, hi]`. Gradient is zero outside the range.
    pub fn clamp(&self, lo: f32, hi: f32) -> Tensor {
        unary_op(
            self,
            move |x| x.clamp(lo, hi),
            move |x, _| if x >= lo && x <= hi { 1.0 } else { 0.0 },
        )
    }

    /// Add a scalar to every element.
    pub fn add_scalar(&self, s: f32) -> Tensor {
        unary_op(self, move |x| x + s, |_, _| 1.0)
    }

    /// Subtract a scalar from every element.
    pub fn sub_scalar(&self, s: f32) -> Tensor {
        self.add_scalar(-s)
    }

    /// Multiply every element by a scalar.
    pub fn mul_scalar(&self, s: f32) -> Tensor {
        unary_op(self, move |x| x * s, move |_, _| s)
    }

    /// Divide every element by a scalar.
    pub fn div_scalar(&self, s: f32) -> Tensor {
        self.mul_scalar(1.0 / s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grad_of(f: impl Fn(&Tensor) -> Tensor, x0: f32) -> (f32, f32) {
        let x = Tensor::param(vec![x0], [1]);
        let y = f(&x);
        y.sum().backward();
        (y.item(), x.grad().unwrap()[0])
    }

    /// Central finite difference for gradient checking.
    fn numeric_grad(f: impl Fn(f32) -> f32, x0: f32) -> f32 {
        let h = 1e-3;
        (f(x0 + h) - f(x0 - h)) / (2.0 * h)
    }

    #[test]
    fn exp_ln_sqrt_gradcheck() {
        for &x0 in &[0.5f32, 1.0, 2.0] {
            let (_, g) = grad_of(|x| x.exp(), x0);
            assert!((g - numeric_grad(|v| v.exp(), x0)).abs() < 1e-2);
            let (_, g) = grad_of(|x| x.ln(), x0);
            assert!((g - numeric_grad(|v| v.ln(), x0)).abs() < 1e-2);
            let (_, g) = grad_of(|x| x.sqrt(), x0);
            assert!((g - numeric_grad(|v| v.sqrt(), x0)).abs() < 1e-2);
        }
    }

    #[test]
    fn activations_gradcheck() {
        for &x0 in &[-2.0f32, -0.5, 0.3, 1.7] {
            let (_, g) = grad_of(|x| x.tanh(), x0);
            assert!((g - numeric_grad(|v| v.tanh(), x0)).abs() < 1e-2);
            let (_, g) = grad_of(|x| x.sigmoid(), x0);
            assert!((g - numeric_grad(|v| 1.0 / (1.0 + (-v).exp()), x0)).abs() < 1e-2);
            let (_, g) = grad_of(|x| x.silu(), x0);
            assert!((g - numeric_grad(|v| v / (1.0 + (-v).exp()), x0)).abs() < 1e-2,);
        }
    }

    #[test]
    fn rsqrt_value_and_grad() {
        let (y, g) = grad_of(|x| x.rsqrt(), 4.0);
        assert!((y - 0.5).abs() < 1e-6);
        assert!((g - numeric_grad(|v| 1.0 / v.sqrt(), 4.0)).abs() < 1e-3);
    }

    #[test]
    fn relu_and_clamp() {
        let x = Tensor::param(vec![-1.0, 0.5, 2.0], [3]);
        let y = x.relu();
        assert_eq!(y.to_vec(), vec![0.0, 0.5, 2.0]);
        y.sum().backward();
        assert_eq!(x.grad().unwrap(), vec![0.0, 1.0, 1.0]);

        let z = Tensor::param(vec![-1.0, 0.5, 2.0], [3]);
        let c = z.clamp(0.0, 1.0);
        assert_eq!(c.to_vec(), vec![0.0, 0.5, 1.0]);
        c.sum().backward();
        assert_eq!(z.grad().unwrap(), vec![0.0, 1.0, 0.0]);
    }

    #[test]
    fn scalar_arith() {
        let x = Tensor::param(vec![2.0], [1]);
        let y = x
            .mul_scalar(3.0)
            .add_scalar(1.0)
            .sub_scalar(2.0)
            .div_scalar(5.0);
        assert!((y.item() - 1.0).abs() < 1e-6);
        y.sum().backward();
        assert!((x.grad().unwrap()[0] - 0.6).abs() < 1e-6);
    }

    #[test]
    fn abs_and_square_and_powf() {
        let (y, g) = grad_of(|x| x.abs(), -3.0);
        assert_eq!((y, g), (3.0, -1.0));
        let (y, g) = grad_of(|x| x.square(), 3.0);
        assert_eq!((y, g), (9.0, 6.0));
        let (y, g) = grad_of(|x| x.powf(3.0), 2.0);
        assert!((y - 8.0).abs() < 1e-5 && (g - 12.0).abs() < 1e-4);
    }

    #[test]
    fn neg_and_recip() {
        let (y, g) = grad_of(|x| x.neg(), 2.0);
        assert_eq!((y, g), (-2.0, -1.0));
        let (y, g) = grad_of(|x| x.recip(), 2.0);
        assert!((y - 0.5).abs() < 1e-6 && (g + 0.25).abs() < 1e-5);
    }
}
