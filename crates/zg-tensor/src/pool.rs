//! Thread-local recycling pool for transient `Vec<f32>` buffers.
//!
//! A training step allocates dozens of multi-megabyte scratch buffers —
//! forward outputs, backward gradient scratch, GEMM packing panels — and
//! frees them microseconds later when the autograd graph is torn down. At
//! those sizes the allocator round-trips pages to the OS, so every step
//! pays the mmap/munmap + page-fault tax again. This pool keeps freed
//! buffers on a thread-local free-list keyed by length (`BTreeMap`, per
//! lint rule D1) and hands them back to subsequent requests of the same
//! (or slightly smaller) size.
//!
//! Integration points:
//! - [`crate::Tensor`] node data and gradient buffers are recycled when the
//!   node drops, and `accumulate_grad` / `zeros` draw from the pool.
//! - Backward closures in the op modules check scratch out via
//!   [`PooledBuf`], an RAII handle that returns the buffer on drop and
//!   feeds the checked-out high-water counter consumed by
//!   [`crate::GraphLeakGuard`].
//! - [`set_pool_enabled`] turns recycling off (every take allocates fresh,
//!   every recycle drops) so benchmarks can measure the unpooled baseline
//!   on the same build.
//!
//! The pool is thread-local because [`crate::Tensor`] itself is
//! single-threaded (`Rc`); each worker thread warms its own free-lists.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::ops::{Deref, DerefMut};

/// Buffers shorter than this are cheaper to allocate than to track.
const MIN_POOL_ELEMS: usize = 64;

/// Cap on retained free-list elements per thread (16 Mi f32 = 64 MiB).
const MAX_RETAINED_ELEMS: usize = 16 * 1024 * 1024;

/// A free buffer is reused only when its length is at most this multiple of
/// the request, so small asks cannot pin huge buffers.
const MAX_SLACK_FACTOR: usize = 2;

/// Snapshot of the pool's counters for one thread.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Buffer requests served (hit or miss).
    pub takes: u64,
    /// Requests satisfied from the free-list.
    pub hits: u64,
    /// Requests that fell back to a fresh allocation.
    pub misses: u64,
    /// Buffers accepted back onto the free-list.
    pub recycled: u64,
    /// RAII handles currently outstanding ([`PooledBuf`] checkouts).
    pub checked_out: u64,
    /// Maximum simultaneous checkouts observed (high-water mark).
    pub high_water: u64,
    /// Elements currently parked on the free-list.
    pub retained_elems: u64,
}

impl PoolStats {
    /// Fraction of takes served from the free-list, `0.0` when idle.
    pub fn hit_rate(&self) -> f64 {
        if self.takes == 0 {
            0.0
        } else {
            self.hits as f64 / self.takes as f64
        }
    }
}

#[derive(Default)]
struct Pool {
    /// Free buffers keyed by their length (capacity may exceed it).
    free: BTreeMap<usize, Vec<Vec<f32>>>,
    retained_elems: usize,
    disabled: bool,
    stats: PoolStats,
}

thread_local! {
    static POOL: RefCell<Pool> = RefCell::new(Pool::default());
}

/// How the caller wants the returned buffer prepared.
enum Prep {
    /// Length `n`, every element `0.0`.
    Zeroed,
    /// Length `n`, contents unspecified (caller overwrites everything).
    Scratch,
    /// Length `0`, capacity at least `n` (caller appends).
    Cleared,
}

fn take(n: usize, prep: Prep) -> Vec<f32> {
    let reused = POOL
        .try_with(|cell| {
            let mut p = cell.borrow_mut();
            if n < MIN_POOL_ELEMS {
                // Below the pooling threshold: not counted, so hit-rate
                // reflects only buffers the pool could actually serve.
                return None;
            }
            p.stats.takes += 1;
            if p.disabled {
                p.stats.misses += 1;
                return None;
            }
            let hi = n.saturating_mul(MAX_SLACK_FACTOR);
            let mut found: Option<(usize, Vec<f32>)> = None;
            if let Some((&len, bucket)) = p.free.range_mut(n..=hi).next() {
                if let Some(v) = bucket.pop() {
                    found = Some((len, v));
                }
            }
            match found {
                Some((len, v)) => {
                    if p.free.get(&len).is_some_and(|b| b.is_empty()) {
                        p.free.remove(&len);
                    }
                    p.retained_elems = p.retained_elems.saturating_sub(len);
                    p.stats.retained_elems = p.retained_elems as u64;
                    p.stats.hits += 1;
                    Some(v)
                }
                None => {
                    p.stats.misses += 1;
                    None
                }
            }
        })
        .unwrap_or(None);

    match reused {
        Some(mut v) => {
            match prep {
                Prep::Zeroed => {
                    v.truncate(n);
                    v.fill(0.0);
                }
                Prep::Scratch => v.truncate(n),
                Prep::Cleared => v.clear(),
            }
            v
        }
        None => match prep {
            // A fresh zeroed Vec serves both: the allocator hands back
            // zero pages anyway, and `Scratch` contents are unspecified.
            Prep::Zeroed | Prep::Scratch => vec![0.0; n],
            Prep::Cleared => Vec::with_capacity(n),
        },
    }
}

/// Pooled buffer of length `n` with every element `0.0`.
pub(crate) fn take_zeroed(n: usize) -> Vec<f32> {
    take(n, Prep::Zeroed)
}

/// Pooled buffer of length `n` with unspecified contents — callers must
/// overwrite every element before reading.
pub(crate) fn take_scratch(n: usize) -> Vec<f32> {
    take(n, Prep::Scratch)
}

/// Pooled empty buffer with capacity at least `n`, for `extend` builders.
pub(crate) fn take_cleared(n: usize) -> Vec<f32> {
    take(n, Prep::Cleared)
}

/// Offer a buffer back to this thread's free-list. Dropped (deallocated
/// normally) when pooling is disabled, the buffer is too small, or the
/// retained-bytes cap is reached.
pub(crate) fn recycle(v: Vec<f32>) {
    let len = v.len();
    if len < MIN_POOL_ELEMS {
        return;
    }
    // Ignore TLS-teardown races: if the pool is already destroyed the
    // buffer simply deallocates normally.
    let _ = POOL.try_with(|cell| {
        let mut p = cell.borrow_mut();
        if p.disabled || p.retained_elems + len > MAX_RETAINED_ELEMS {
            return;
        }
        p.retained_elems += len;
        p.stats.retained_elems = p.retained_elems as u64;
        p.stats.recycled += 1;
        p.free.entry(len).or_default().push(v);
    });
}

fn checkout_inc() {
    let _ = POOL.try_with(|cell| {
        let mut p = cell.borrow_mut();
        p.stats.checked_out += 1;
        if p.stats.checked_out > p.stats.high_water {
            p.stats.high_water = p.stats.checked_out;
        }
    });
}

fn checkout_dec() {
    let _ = POOL.try_with(|cell| {
        let mut p = cell.borrow_mut();
        p.stats.checked_out = p.stats.checked_out.saturating_sub(1);
    });
}

/// RAII checkout of a pooled scratch buffer.
///
/// Dereferences to `Vec<f32>`; dropping the handle returns the buffer to
/// the thread's free-list and decrements the checked-out counter, so an
/// un-returned buffer shows up as a nonzero [`live_pooled_buffers`] — the
/// debug-mode [`crate::GraphLeakGuard`] asserts that count is restored
/// across guarded scopes.
pub struct PooledBuf {
    buf: Option<Vec<f32>>,
}

impl PooledBuf {
    /// Check out a buffer of length `n`, all elements `0.0`.
    pub fn zeroed(n: usize) -> Self {
        checkout_inc();
        PooledBuf {
            buf: Some(take_zeroed(n)),
        }
    }

    /// Check out a buffer of length `n` with unspecified contents; the
    /// caller must overwrite every element before reading.
    pub fn scratch(n: usize) -> Self {
        checkout_inc();
        PooledBuf {
            buf: Some(take_scratch(n)),
        }
    }

    /// Check out a buffer of length `n`, every element `v`.
    pub fn filled(n: usize, v: f32) -> Self {
        let mut b = Self::scratch(n);
        b.fill(v);
        b
    }

    /// Consume the handle, keeping the buffer out of the pool for good
    /// (ownership passes to the caller).
    pub fn into_vec(mut self) -> Vec<f32> {
        checkout_dec();
        // INVARIANT: `buf` is only `None` after `into_vec`, which consumes
        // `self`, so it is always present here.
        self.buf.take().expect("PooledBuf already consumed")
    }
}

impl Deref for PooledBuf {
    type Target = Vec<f32>;
    fn deref(&self) -> &Vec<f32> {
        // INVARIANT: `buf` is only `None` after `into_vec`, which consumes
        // `self`, so it is always present here.
        self.buf.as_ref().expect("PooledBuf already consumed")
    }
}

impl DerefMut for PooledBuf {
    fn deref_mut(&mut self) -> &mut Vec<f32> {
        // INVARIANT: `buf` is only `None` after `into_vec`, which consumes
        // `self`, so it is always present here.
        self.buf.as_mut().expect("PooledBuf already consumed")
    }
}

impl Drop for PooledBuf {
    fn drop(&mut self) {
        if let Some(v) = self.buf.take() {
            checkout_dec();
            recycle(v);
        }
    }
}

/// This thread's pool counters.
pub fn pool_stats() -> PoolStats {
    POOL.try_with(|cell| cell.borrow().stats)
        .unwrap_or_default()
}

/// Reset this thread's pool counters (free-lists are untouched).
pub fn reset_pool_stats() {
    let _ = POOL.try_with(|cell| {
        let mut p = cell.borrow_mut();
        let retained = p.stats.retained_elems;
        let checked_out = p.stats.checked_out;
        p.stats = PoolStats {
            retained_elems: retained,
            checked_out,
            high_water: checked_out,
            ..PoolStats::default()
        };
    });
}

/// Scoped counter isolation for this thread's pool stats, from
/// [`pool_stats_scope`]. While the scope is alive, [`pool_stats`] reports
/// only activity since the scope opened; on drop the pre-scope counters
/// are merged back in, so enclosing observers still see cumulative
/// totals. This is what lets two tests (or a test and the code under
/// test) assert on `pool_stats()` without perturbing each other.
pub struct PoolStatsScope {
    saved: PoolStats,
    /// Thread-local state: the guard must drop on the creating thread.
    _not_send: std::marker::PhantomData<*const ()>,
}

/// Open a [`PoolStatsScope`]: snapshot and reset this thread's pool
/// counters, restoring (merged) counters when the guard drops.
pub fn pool_stats_scope() -> PoolStatsScope {
    let saved = pool_stats();
    reset_pool_stats();
    PoolStatsScope {
        saved,
        _not_send: std::marker::PhantomData,
    }
}

impl PoolStatsScope {
    /// Counters accumulated inside this scope so far (same as
    /// [`pool_stats`] while the scope is the active one).
    pub fn stats(&self) -> PoolStats {
        pool_stats()
    }
}

impl Drop for PoolStatsScope {
    fn drop(&mut self) {
        let _ = POOL.try_with(|cell| {
            let mut p = cell.borrow_mut();
            let inner = p.stats;
            p.stats = PoolStats {
                takes: self.saved.takes + inner.takes,
                hits: self.saved.hits + inner.hits,
                misses: self.saved.misses + inner.misses,
                recycled: self.saved.recycled + inner.recycled,
                // Live levels are current truth, not scope-relative.
                checked_out: inner.checked_out,
                high_water: self.saved.high_water.max(inner.high_water),
                retained_elems: inner.retained_elems,
            };
        });
    }
}

/// Enable or disable recycling on this thread; returns the previous state.
///
/// While disabled every take allocates fresh and every recycle drops, which
/// is how `zg-bench` measures the unpooled baseline on the same build.
pub fn set_pool_enabled(enabled: bool) -> bool {
    POOL.try_with(|cell| {
        let mut p = cell.borrow_mut();
        let was = !p.disabled;
        p.disabled = !enabled;
        was
    })
    .unwrap_or(true)
}

/// Drop every buffer parked on this thread's free-list.
pub fn clear_pool() {
    let _ = POOL.try_with(|cell| {
        let mut p = cell.borrow_mut();
        p.free.clear();
        p.retained_elems = 0;
        p.stats.retained_elems = 0;
    });
}

/// Number of [`PooledBuf`] handles currently outstanding on this thread.
///
/// Zero whenever no backward pass is mid-flight; a persistent nonzero value
/// means pooled scratch escaped its scope.
pub fn live_pooled_buffers() -> u64 {
    pool_stats().checked_out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tests mutate thread-local pool state; each starts from a clean slate.
    fn reset() {
        set_pool_enabled(true);
        clear_pool();
        reset_pool_stats();
    }

    #[test]
    fn take_recycle_roundtrip_hits() {
        reset();
        let v = take_zeroed(1024);
        assert_eq!(v.len(), 1024);
        recycle(v);
        let before = pool_stats();
        assert_eq!(before.recycled, 1);
        let v2 = take_zeroed(1024);
        assert_eq!(v2.len(), 1024);
        assert!(v2.iter().all(|&x| x == 0.0));
        let after = pool_stats();
        assert_eq!(after.hits, before.hits + 1);
    }

    #[test]
    fn smaller_request_reuses_with_bounded_slack() {
        reset();
        recycle(vec![7.0; 1000]);
        // 600 is within 2x of 1000: reuse and truncate.
        let v = take_scratch(600);
        assert_eq!(v.len(), 600);
        assert_eq!(pool_stats().hits, 1);
        recycle(v);
        // 100 is far below 600: the parked buffer must not be pinned.
        let w = take_scratch(100);
        assert_eq!(w.len(), 100);
        assert_eq!(
            pool_stats().hits,
            1,
            "oversized buffer must not serve tiny ask"
        );
    }

    #[test]
    fn zeroed_take_scrubs_recycled_contents() {
        reset();
        recycle(vec![3.5; 512]);
        let v = take_zeroed(512);
        assert!(v.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn cleared_take_is_empty_with_capacity() {
        reset();
        recycle(vec![1.0; 256]);
        let v = take_cleared(256);
        assert!(v.is_empty());
        assert!(v.capacity() >= 256);
    }

    #[test]
    fn tiny_buffers_bypass_the_pool() {
        reset();
        recycle(vec![1.0; MIN_POOL_ELEMS - 1]);
        assert_eq!(pool_stats().recycled, 0);
        let _ = take_zeroed(8);
        assert_eq!(pool_stats().hits, 0);
    }

    #[test]
    fn disabled_pool_never_recycles() {
        reset();
        set_pool_enabled(false);
        recycle(vec![1.0; 4096]);
        let v = take_zeroed(4096);
        assert_eq!(pool_stats().hits, 0);
        drop(v);
        set_pool_enabled(true);
    }

    #[test]
    fn pooled_buf_checkout_counter_balances() {
        reset();
        assert_eq!(live_pooled_buffers(), 0);
        {
            let a = PooledBuf::zeroed(128);
            let b = PooledBuf::zeroed(128);
            assert_eq!(live_pooled_buffers(), 2);
            assert_eq!(pool_stats().high_water, 2);
            drop(a);
            assert_eq!(live_pooled_buffers(), 1);
            drop(b);
        }
        assert_eq!(live_pooled_buffers(), 0);
        assert_eq!(pool_stats().high_water, 2);
    }

    #[test]
    fn into_vec_removes_buffer_from_pool_custody() {
        reset();
        let b = PooledBuf::zeroed(128);
        let v = b.into_vec();
        assert_eq!(live_pooled_buffers(), 0);
        assert_eq!(v.len(), 128);
        // Dropping the plain Vec does not touch the recycle counter.
        let before = pool_stats().recycled;
        drop(v);
        assert_eq!(pool_stats().recycled, before);
    }

    #[test]
    fn retained_cap_bounds_free_list() {
        reset();
        let chunk = MAX_RETAINED_ELEMS / 2;
        recycle(vec![0.0; chunk]);
        recycle(vec![0.0; chunk]);
        // A third chunk would exceed the cap and must be dropped.
        recycle(vec![0.0; chunk]);
        let s = pool_stats();
        assert_eq!(s.recycled, 2);
        assert!(s.retained_elems as usize <= MAX_RETAINED_ELEMS);
        clear_pool();
        assert_eq!(pool_stats().retained_elems, 0);
    }

    #[test]
    fn stats_scope_isolates_and_merges_back() {
        reset();
        recycle(vec![0.0; 512]);
        let _ = take_zeroed(512); // outer: 1 take, 1 hit
        let outer_before = pool_stats();
        assert_eq!(outer_before.takes, 1);
        {
            let scope = pool_stats_scope();
            assert_eq!(pool_stats().takes, 0, "scope starts clean");
            let _ = take_zeroed(512); // inner: 1 take, 1 miss
            assert_eq!(scope.stats().takes, 1);
            assert_eq!(scope.stats().hits, 0);
        }
        // After the scope, cumulative counters include inner activity.
        let outer_after = pool_stats();
        assert_eq!(outer_after.takes, 2);
        assert_eq!(outer_after.hits, 1);
        assert_eq!(outer_after.misses, 1);
    }

    #[test]
    fn stats_scopes_nest() {
        reset();
        let s1 = pool_stats_scope();
        let _ = take_zeroed(256);
        {
            let s2 = pool_stats_scope();
            let _ = take_zeroed(256);
            let _ = take_zeroed(256);
            assert_eq!(s2.stats().takes, 2);
        }
        assert_eq!(s1.stats().takes, 3, "inner scope merges into outer");
        drop(s1);
        assert_eq!(pool_stats().takes, 3);
    }

    #[test]
    fn stats_scope_tracks_live_checkouts_truthfully() {
        reset();
        let held = PooledBuf::zeroed(128);
        {
            let scope = pool_stats_scope();
            // The pre-existing checkout is a live level, not scope activity.
            assert_eq!(scope.stats().checked_out, 1);
            let inner = PooledBuf::zeroed(128);
            assert_eq!(scope.stats().checked_out, 2);
            drop(inner);
        }
        assert_eq!(pool_stats().checked_out, 1);
        drop(held);
        assert_eq!(pool_stats().checked_out, 0);
    }

    #[test]
    fn hit_rate_is_hits_over_takes() {
        reset();
        recycle(vec![0.0; 512]);
        let a = take_zeroed(512); // hit
        let b = take_zeroed(512); // miss
        let s = pool_stats();
        assert_eq!(s.takes, 2);
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
        drop(a);
        drop(b);
    }
}
