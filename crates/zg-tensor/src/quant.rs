//! int8 quantized GEMM for frozen inference weights.
//!
//! Weights are quantized **per output channel** (per column of the
//! `(k, n)` matrix): column `j` gets scale `s_j = absmax_j / 127` and
//! symmetric round-to-nearest int8 codes. Activations are quantized
//! **per row, dynamically** at call time with the same absmax scheme, so
//! each output is `Σ_p qx[p]·qw[p][j]` accumulated in i32 and dequantized
//! as `acc · (s_row · s_j)` in f32.
//!
//! Determinism contract: integer accumulation is exact, and the single
//! f32 dequantization expression is written identically in the AVX2 and
//! portable paths — so both produce **bit-identical** outputs, and the
//! result is independent of how rows are split across calls or threads
//! (activation scales are per row). The workspace's bit-exact replica
//! and serve-parity guarantees therefore carry over to quantized runs.
//!
//! Packed layout: columns are grouped in [`NRQ`]-wide panels and the `k`
//! dimension in pairs, `packed[panel][pair][col][2]` — exactly the
//! operand order `vpmaddwd` consumes (each 32-bit lane multiplies an
//! adjacent `(k, k+1)` int8 weight pair by the matching activation pair
//! and adds horizontally).

use std::cell::Cell;
use std::sync::OnceLock;

/// Quantized panel width (output columns per packed panel): two AVX2
/// i32 accumulator registers.
const NRQ: usize = 16;

/// Max reduction depth. i32 accumulation of `k` products bounded by
/// 127·127 needs `k ≤ i32::MAX / 127²` ≈ 133k; real shapes here are
/// ≤ a few thousand.
const MAX_K: usize = 1 << 17;

thread_local! {
    static QUANTIZED_INFERENCE: Cell<bool> = const { Cell::new(true) };
}

/// Whether quantized inference is enabled on this thread (default true;
/// only takes effect for layers that actually hold a calibrated int8
/// copy of their weights, and never under [`crate::grad_enabled`]).
pub fn quantized_inference() -> bool {
    QUANTIZED_INFERENCE.with(|q| q.get())
}

/// Enable/disable quantized inference on this thread. Returns the
/// previous value so scopes can restore it.
pub fn set_quantized_inference(on: bool) -> bool {
    QUANTIZED_INFERENCE.with(|q| q.replace(on))
}

/// Whether `ZG_QUANT=1` is set (read once): opt-in for *lazy
/// auto-calibration* of eligible inference weights, used by CI to force
/// the quantized path through the whole test suite.
pub fn quant_env_enabled() -> bool {
    static ENV: OnceLock<bool> = OnceLock::new();
    *ENV.get_or_init(|| std::env::var("ZG_QUANT").is_ok_and(|v| v == "1"))
}

/// A `(k, n)` weight matrix quantized to int8 with per-output-channel
/// scales, packed for the `vpmaddwd` microkernel.
#[derive(Clone)]
pub struct QuantizedMatrix {
    k: usize,
    n: usize,
    /// `[panel][pair][col][2]` int8 codes, zero-padded in both the
    /// column remainder and the odd-`k` tail.
    packed: Vec<i8>,
    /// Per-column dequantization scales (`absmax / 127`).
    scales: Vec<f32>,
}

impl QuantizedMatrix {
    /// Calibrate a row-major `(k, n)` f32 matrix: per-column absmax
    /// scales, symmetric round-to-nearest int8.
    pub fn quantize(w: &[f32], k: usize, n: usize) -> QuantizedMatrix {
        assert_eq!(w.len(), k * n, "weight length must be k*n");
        assert!(k <= MAX_K, "reduction depth {k} exceeds i32 headroom");
        let mut scales = vec![0.0f32; n];
        for (j, s) in scales.iter_mut().enumerate() {
            let mut amax = 0.0f32;
            for p in 0..k {
                amax = amax.max(w[p * n + j].abs());
            }
            *s = amax / 127.0;
        }
        let pairs = k.div_ceil(2);
        let npanels = n.div_ceil(NRQ);
        let mut packed = vec![0i8; npanels * pairs * NRQ * 2];
        for jp in 0..npanels {
            let col0 = jp * NRQ;
            let nr = NRQ.min(n - col0);
            let base = jp * pairs * NRQ * 2;
            for p in 0..pairs {
                for jj in 0..nr {
                    let j = col0 + jj;
                    let s = scales[j];
                    if s <= 0.0 {
                        continue;
                    }
                    let inv = 1.0 / s;
                    for h in 0..2 {
                        let kk = 2 * p + h;
                        if kk < k {
                            let q = (w[kk * n + j] * inv).round().clamp(-127.0, 127.0);
                            packed[base + p * NRQ * 2 + jj * 2 + h] = q as i8;
                        }
                    }
                }
            }
        }
        QuantizedMatrix {
            k,
            n,
            packed,
            scales,
        }
    }

    /// Reduction depth (input features).
    pub fn k(&self) -> usize {
        self.k
    }

    /// Output features.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Heap footprint of the quantized representation in bytes.
    pub fn bytes(&self) -> usize {
        self.packed.len() + self.scales.len() * 4
    }

    /// `out(m, n) += x(m, k) · Wq`, quantizing each activation row
    /// dynamically. AVX2 when available, portable otherwise —
    /// bit-identical either way (see module docs).
    pub fn matmul_into(&self, x: &[f32], m: usize, out: &mut [f32]) {
        let (k, n) = (self.k, self.n);
        assert_eq!(x.len(), m * k, "activation length must be m*k");
        assert_eq!(out.len(), m * n, "output length must be m*n");
        crate::ops_matmul::count_quant_dispatch(m, n, k);
        let pairs = k.div_ceil(2);
        let mut qx = vec![0i8; 2 * pairs];
        let avx2 = crate::simd::simd_available();
        #[cfg(target_arch = "x86_64")]
        let mut qpair: Vec<i32> = if avx2 {
            Vec::with_capacity(pairs)
        } else {
            Vec::new()
        };
        for i in 0..m {
            let row = &x[i * k..(i + 1) * k];
            let sx = quantize_row(row, &mut qx);
            let orow = &mut out[i * n..(i + 1) * n];
            #[cfg(target_arch = "x86_64")]
            if avx2 {
                qpair.clear();
                qpair.extend((0..pairs).map(|p| {
                    (qx[2 * p] as u16 as u32 | ((qx[2 * p + 1] as u16 as u32) << 16)) as i32
                }));
                for jp in 0..n.div_ceil(NRQ) {
                    let col0 = jp * NRQ;
                    let nr = NRQ.min(n - col0);
                    let base = jp * pairs * NRQ * 2;
                    // SAFETY: `packed` holds `pairs·NRQ·2` bytes from
                    // `base`, `qpair` holds `pairs` i32s, `scales` and
                    // `orow` hold ≥ `col0 + nr` floats with `nr ≤ NRQ`;
                    // AVX2 presence was checked at runtime above.
                    unsafe {
                        qpanel_avx2(
                            pairs,
                            qpair.as_ptr(),
                            self.packed.as_ptr().add(base),
                            sx,
                            self.scales.as_ptr().add(col0),
                            orow.as_mut_ptr().add(col0),
                            nr,
                        );
                    }
                }
                continue;
            }
            let _ = avx2;
            for jp in 0..n.div_ceil(NRQ) {
                let col0 = jp * NRQ;
                let nr = NRQ.min(n - col0);
                let base = jp * pairs * NRQ * 2;
                for jj in 0..nr {
                    let mut acc = 0i32;
                    for p in 0..pairs {
                        let w0 = self.packed[base + p * NRQ * 2 + jj * 2] as i32;
                        let w1 = self.packed[base + p * NRQ * 2 + jj * 2 + 1] as i32;
                        acc += qx[2 * p] as i32 * w0 + qx[2 * p + 1] as i32 * w1;
                    }
                    // Keep this dequant expression in sync with
                    // qpanel_avx2: identical f32 ops => identical bits.
                    orow[col0 + jj] += acc as f32 * (sx * self.scales[col0 + jj]);
                }
            }
        }
    }

    /// Portable scalar reference path, ignoring CPU features — the
    /// parity oracle for [`QuantizedMatrix::matmul_into`].
    pub fn matmul_reference(&self, x: &[f32], m: usize, out: &mut [f32]) {
        let (k, n) = (self.k, self.n);
        assert_eq!(x.len(), m * k, "activation length must be m*k");
        assert_eq!(out.len(), m * n, "output length must be m*n");
        let pairs = k.div_ceil(2);
        let mut qx = vec![0i8; 2 * pairs];
        for i in 0..m {
            let row = &x[i * k..(i + 1) * k];
            let sx = quantize_row(row, &mut qx);
            let orow = &mut out[i * n..(i + 1) * n];
            for jp in 0..n.div_ceil(NRQ) {
                let col0 = jp * NRQ;
                let nr = NRQ.min(n - col0);
                let base = jp * pairs * NRQ * 2;
                for jj in 0..nr {
                    let mut acc = 0i32;
                    for p in 0..pairs {
                        let w0 = self.packed[base + p * NRQ * 2 + jj * 2] as i32;
                        let w1 = self.packed[base + p * NRQ * 2 + jj * 2 + 1] as i32;
                        acc += qx[2 * p] as i32 * w0 + qx[2 * p + 1] as i32 * w1;
                    }
                    orow[col0 + jj] += acc as f32 * (sx * self.scales[col0 + jj]);
                }
            }
        }
    }
}

/// Quantize one activation row with absmax scaling into `qx`
/// (zero-padded past `row.len()`); returns the dequantization scale.
fn quantize_row(row: &[f32], qx: &mut [i8]) -> f32 {
    let amax = row.iter().fold(0.0f32, |m, v| m.max(v.abs()));
    let s = amax / 127.0;
    qx.fill(0);
    if s > 0.0 {
        let inv = 127.0 / amax;
        for (q, &v) in qx.iter_mut().zip(row) {
            *q = (v * inv).round().clamp(-127.0, 127.0) as i8;
        }
    }
    s
}

/// AVX2 panel kernel: `vpmaddwd` over sign-extended int8 weight pairs
/// against the broadcast packed activation pair, i32 accumulation, then
/// the shared dequant expression. Zero-padding makes padded lanes
/// contribute exactly 0, so results match the portable path bitwise.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
// SAFETY: callers check `simd_available()` (AVX2 present) before calling
// and guarantee `qpair` holds `pairs` i32s, `wp` holds `pairs·NRQ·2`
// bytes, and `wscales`/`out` hold at least `nr ≤ NRQ` floats; all
// loads/stores are unaligned variants.
unsafe fn qpanel_avx2(
    pairs: usize,
    qpair: *const i32,
    wp: *const i8,
    sx: f32,
    wscales: *const f32,
    out: *mut f32,
    nr: usize,
) {
    use std::arch::x86_64::*;
    let mut acc0 = _mm256_setzero_si256();
    let mut acc1 = _mm256_setzero_si256();
    for p in 0..pairs {
        // Each 32-bit lane of `qv` is the activation pair (qx[2p],
        // qx[2p+1]) as two i16s — the left operand vpmaddwd needs.
        let qv = _mm256_set1_epi32(*qpair.add(p));
        let wbytes = _mm256_loadu_si256(wp.add(p * NRQ * 2) as *const __m256i);
        let lo = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(wbytes));
        let hi = _mm256_cvtepi8_epi16(_mm256_extracti128_si256(wbytes, 1));
        acc0 = _mm256_add_epi32(acc0, _mm256_madd_epi16(lo, qv));
        acc1 = _mm256_add_epi32(acc1, _mm256_madd_epi16(hi, qv));
    }
    let mut accs = [0i32; NRQ];
    _mm256_storeu_si256(accs.as_mut_ptr() as *mut __m256i, acc0);
    _mm256_storeu_si256(accs.as_mut_ptr().add(8) as *mut __m256i, acc1);
    for (jj, &acc) in accs.iter().take(nr).enumerate() {
        // Keep in sync with the portable dequant expression.
        *out.add(jj) += acc as f32 * (sx * *wscales.add(jj));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat(seed: u64, len: usize) -> Vec<f32> {
        let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..len)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                ((s >> 40) as f32 / (1u64 << 24) as f32) - 0.5
            })
            .collect()
    }

    #[test]
    fn simd_matches_reference_bitwise() {
        for (m, n, k) in [
            (1, 64, 64),
            (3, 17, 9),
            (7, 768, 64),
            (16, 128, 64),
            (5, 33, 127),
            (2, 16, 1),
        ] {
            let w = mat(9 + k as u64, k * n);
            let x = mat(10 + m as u64, m * k);
            let q = QuantizedMatrix::quantize(&w, k, n);
            let mut o0 = vec![0.0f32; m * n];
            let mut o1 = vec![0.0f32; m * n];
            q.matmul_reference(&x, m, &mut o0);
            q.matmul_into(&x, m, &mut o1);
            assert_eq!(o0, o1, "quant simd != reference at {m}x{n}x{k}");
        }
    }

    #[test]
    fn quantization_error_is_bounded() {
        let (m, n, k) = (4, 96, 96);
        let w = mat(1, k * n);
        let x = mat(2, m * k);
        let q = QuantizedMatrix::quantize(&w, k, n);
        let mut oq = vec![0.0f32; m * n];
        q.matmul_into(&x, m, &mut oq);
        let mut of = vec![0.0f32; m * n];
        crate::ops_matmul::gemm_naive(false, false, m, n, k, &x, &w, &mut of);
        let denom = of.iter().fold(0.0f32, |a, v| a.max(v.abs())).max(1.0);
        for (a, b) in oq.iter().zip(&of) {
            assert!(
                (a - b).abs() / denom < 0.05,
                "quantized output drifted: {a} vs {b}"
            );
        }
    }

    #[test]
    fn row_split_invariance() {
        // Per-row activation scales: quantizing 5 rows at once equals
        // quantizing them one at a time — prefill chunking is bit-safe.
        let (m, n, k) = (5, 48, 33);
        let w = mat(3, k * n);
        let x = mat(4, m * k);
        let q = QuantizedMatrix::quantize(&w, k, n);
        let mut whole = vec![0.0f32; m * n];
        q.matmul_into(&x, m, &mut whole);
        let mut split = vec![0.0f32; m * n];
        for i in 0..m {
            q.matmul_into(&x[i * k..(i + 1) * k], 1, &mut split[i * n..(i + 1) * n]);
        }
        assert_eq!(whole, split);
    }

    #[test]
    fn zero_column_and_zero_row_are_exact() {
        let (n, k) = (17, 8);
        let mut w = mat(5, k * n);
        for p in 0..k {
            w[p * n + 3] = 0.0; // dead output channel
        }
        let q = QuantizedMatrix::quantize(&w, k, n);
        let mut out = vec![0.0f32; n];
        q.matmul_into(&vec![0.0f32; k], 1, &mut out);
        assert_eq!(out, vec![0.0f32; n], "zero activations must emit zeros");
    }

    #[test]
    fn knob_round_trips() {
        assert!(quantized_inference(), "default must be enabled");
        let prev = set_quantized_inference(false);
        assert!(prev);
        assert!(!quantized_inference());
        set_quantized_inference(true);
        assert!(quantized_inference());
    }
}
