//! Shape and stride arithmetic shared by all tensor operations.
//!
//! Shapes are row-major (`C` order). Broadcasting follows NumPy semantics:
//! shapes are right-aligned and a dimension of `1` stretches to match.

/// A tensor shape: dimension sizes in row-major order.
///
/// An empty shape denotes a scalar (one element).
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Shape(pub Vec<usize>);

impl std::fmt::Debug for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}", self.0)
    }
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}", self.0)
    }
}

impl Shape {
    /// Create a shape from dimension sizes.
    pub fn new(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.0.iter().product()
    }

    /// Dimension sizes as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Size of dimension `axis` (supports negative indexing).
    pub fn dim(&self, axis: isize) -> usize {
        self.0[self.resolve_axis(axis)]
    }

    /// Resolve a possibly-negative axis to a concrete index.
    ///
    /// Panics when the axis is out of range.
    pub fn resolve_axis(&self, axis: isize) -> usize {
        let r = self.rank() as isize;
        let a = if axis < 0 { axis + r } else { axis };
        assert!(
            (0..r).contains(&a),
            "axis {axis} out of range for rank {r} shape {self}"
        );
        a as usize
    }

    /// Row-major strides for this shape.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![0usize; self.rank()];
        let mut acc = 1usize;
        for (i, &d) in self.0.iter().enumerate().rev() {
            strides[i] = acc;
            acc *= d;
        }
        strides
    }

    /// Broadcast two shapes together, NumPy style.
    ///
    /// Returns `None` when the shapes are incompatible.
    pub fn broadcast(&self, other: &Shape) -> Option<Shape> {
        let rank = self.rank().max(other.rank());
        let mut out = vec![0usize; rank];
        for i in 0..rank {
            let a = *self.0.get(self.rank().wrapping_sub(1 + i)).unwrap_or(&1);
            let b = *other.0.get(other.rank().wrapping_sub(1 + i)).unwrap_or(&1);
            let d = if a == b {
                a
            } else if a == 1 {
                b
            } else if b == 1 {
                a
            } else {
                return None;
            };
            out[rank - 1 - i] = d;
        }
        Some(Shape(out))
    }

    /// Whether `self` can broadcast to exactly `target`.
    pub fn broadcasts_to(&self, target: &Shape) -> bool {
        match self.broadcast(target) {
            Some(s) => s == *target,
            None => false,
        }
    }

    /// Strides to iterate `self` as if it had shape `target` (broadcast view).
    ///
    /// Dimensions of size 1 (or missing leading dimensions) get stride 0.
    pub fn broadcast_strides(&self, target: &Shape) -> Vec<usize> {
        debug_assert!(self.broadcasts_to(target), "{self} !-> {target}");
        let own = self.strides();
        let offset = target.rank() - self.rank();
        let mut out = vec![0usize; target.rank()];
        for i in 0..self.rank() {
            if self.0[i] != 1 {
                out[offset + i] = own[i];
            }
        }
        out
    }

    /// The axes of `target` along which `self` was broadcast (stretched),
    /// including the implicit leading axes. Used to reduce gradients back.
    pub fn broadcast_axes(&self, target: &Shape) -> Vec<usize> {
        let offset = target.rank() - self.rank();
        let mut axes: Vec<usize> = (0..offset).collect();
        for i in 0..self.rank() {
            if self.0[i] == 1 && target.0[offset + i] != 1 {
                axes.push(offset + i);
            }
        }
        axes
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape(dims)
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape(dims.to_vec())
    }
}

/// Iterate all multi-dimensional indices of `shape` in row-major order,
/// yielding the flat offset under `strides` (which may be broadcast strides).
pub struct StridedIter<'a> {
    dims: &'a [usize],
    strides: &'a [usize],
    index: Vec<usize>,
    offset: usize,
    remaining: usize,
}

impl<'a> StridedIter<'a> {
    /// Create an iterator over `dims` using `strides` for offsets.
    pub fn new(dims: &'a [usize], strides: &'a [usize]) -> Self {
        let remaining = dims.iter().product();
        StridedIter {
            dims,
            strides,
            index: vec![0; dims.len()],
            offset: 0,
            remaining,
        }
    }
}

impl Iterator for StridedIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.remaining == 0 {
            return None;
        }
        let out = self.offset;
        self.remaining -= 1;
        // Advance odometer from the innermost dimension.
        for i in (0..self.dims.len()).rev() {
            self.index[i] += 1;
            self.offset += self.strides[i];
            if self.index[i] < self.dims[i] {
                break;
            }
            self.offset -= self.strides[i] * self.dims[i];
            self.index[i] = 0;
        }
        Some(out)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for StridedIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_row_major() {
        assert_eq!(Shape::new(&[2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::new(&[5]).strides(), vec![1]);
        assert_eq!(Shape::new(&[]).strides(), Vec::<usize>::new());
    }

    #[test]
    fn numel_and_rank() {
        let s = Shape::new(&[2, 3]);
        assert_eq!(s.numel(), 6);
        assert_eq!(s.rank(), 2);
        assert_eq!(Shape::new(&[]).numel(), 1);
    }

    #[test]
    fn negative_axis_resolution() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.resolve_axis(-1), 2);
        assert_eq!(s.resolve_axis(-3), 0);
        assert_eq!(s.dim(-1), 4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn axis_out_of_range_panics() {
        Shape::new(&[2]).resolve_axis(3);
    }

    #[test]
    fn broadcast_compatible() {
        let a = Shape::new(&[3, 1]);
        let b = Shape::new(&[1, 4]);
        assert_eq!(a.broadcast(&b).unwrap(), Shape::new(&[3, 4]));
        let c = Shape::new(&[2, 3, 4]);
        let d = Shape::new(&[4]);
        assert_eq!(c.broadcast(&d).unwrap(), Shape::new(&[2, 3, 4]));
    }

    #[test]
    fn broadcast_incompatible() {
        assert!(Shape::new(&[3]).broadcast(&Shape::new(&[4])).is_none());
        assert!(Shape::new(&[2, 3])
            .broadcast(&Shape::new(&[3, 2]))
            .is_none());
    }

    #[test]
    fn broadcast_scalar() {
        let s = Shape::new(&[]);
        let t = Shape::new(&[2, 2]);
        assert_eq!(s.broadcast(&t).unwrap(), t);
        assert!(s.broadcasts_to(&t));
    }

    #[test]
    fn broadcast_strides_zeroed() {
        let a = Shape::new(&[3, 1]);
        let t = Shape::new(&[2, 3, 4]);
        assert_eq!(a.broadcast_strides(&t), vec![0, 1, 0]);
    }

    #[test]
    fn broadcast_axes_listed() {
        let a = Shape::new(&[3, 1]);
        let t = Shape::new(&[2, 3, 4]);
        assert_eq!(a.broadcast_axes(&t), vec![0, 2]);
        let same = Shape::new(&[2, 3, 4]);
        assert!(same.broadcast_axes(&t).is_empty());
    }

    #[test]
    fn strided_iter_contiguous() {
        let s = Shape::new(&[2, 3]);
        let st = s.strides();
        let offs: Vec<usize> = StridedIter::new(s.dims(), &st).collect();
        assert_eq!(offs, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn strided_iter_broadcast() {
        // Shape [3,1] broadcast over [3,2]: each row element repeats twice.
        let a = Shape::new(&[3, 1]);
        let t = Shape::new(&[3, 2]);
        let bs = a.broadcast_strides(&t);
        let offs: Vec<usize> = StridedIter::new(t.dims(), &bs).collect();
        assert_eq!(offs, vec![0, 0, 1, 1, 2, 2]);
    }
}
