//! Explicit-SIMD f32 GEMM: cache-blocked packed panels with an 8-lane
//! register-resident microkernel.
//!
//! Structure (BLIS-style, specialized to row-major `c += op(a)·op(b)`):
//!
//! * the `k` dimension is cut into `KC`-deep blocks processed in
//!   **ascending** order, each accumulating into `c`;
//! * per block, all `NR`-wide column panels of `op(b)` are packed once
//!   (layout `[p][j]`, zero-padded at the right edge) and reused across
//!   every row band — the panel set for one block fits in L1/L2;
//! * each `MR`-row band packs its `op(a)` panel (layout `[p][i]`) once
//!   and sweeps all B panels, so packing cost is `O(mk + kn)` against
//!   `O(mnk)` kernel work.
//!
//! The microkernel holds the full `MR`×`NR` accumulator tile in eight
//! 8-lane vector registers, seeds it from the destination tile, and adds
//! `a[p][i]·b[p][j]` products with **separate multiply and add** (never
//! FMA) in ascending-`p` order. Every output element therefore sees
//! exactly the float-operation sequence of the naive and tiled kernels:
//! `c[i][j] + x₀ + x₁ + …` with ascending-`k` products — so the SIMD
//! kernel is **bit-identical** to [`crate::gemm_tiled`] for every shape,
//! transpose flag, and initial `c`, and bit-identical to
//! [`crate::gemm_naive`] in the same cases the tiled kernel is (all
//! call sites in this workspace). Lane parallelism runs across output
//! *columns*, which are independent accumulators — no reassociation.
//!
//! On x86-64 the microkernel is AVX2 intrinsics behind a runtime CPUID
//! check; everywhere else (and for edge tiles narrower than the full
//! 8×8) a portable per-lane loop computes the identical per-element
//! operation sequence, so results do not depend on which path ran.

use crate::pool;

/// Microkernel tile height (output rows per packed A panel).
pub(crate) const MR: usize = 8;
/// Microkernel tile width (output cols per packed B panel).
pub(crate) const NR: usize = 8;
/// Depth of one cache block: an 8-row A panel (`KC·MR` floats) and an
/// 8-column B panel (`KC·NR` floats) are 8 KiB each — both L1-resident.
const KC: usize = 256;

/// Whether the AVX2 microkernel is available on this machine (cached
/// runtime CPUID check; `false` on non-x86-64 targets).
pub fn simd_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        use std::sync::OnceLock;
        static AVX2: OnceLock<bool> = OnceLock::new();
        *AVX2.get_or_init(|| std::arch::is_x86_feature_detected!("avx2"))
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Packed B panels for every `KC` block of the `k` dimension, shared
/// read-only across worker threads.
pub(crate) struct PackedB {
    buf: Vec<f32>,
    /// `(p0, kc, offset)` per block, ascending `p0`.
    blocks: Vec<(usize, usize, usize)>,
    n_panels: usize,
}

impl PackedB {
    /// Pack all `NR`-wide column panels of `op(b)` for every `KC`-deep
    /// block. Panel `jp` of block `bi` starts at
    /// `blocks[bi].2 + jp·kc·NR` with layout `[p][j]`, zero-padded on the
    /// right edge.
    pub(crate) fn pack(tb: bool, b: &[f32], k: usize, n: usize) -> PackedB {
        let n_panels = n.div_ceil(NR);
        let n_blocks = k.div_ceil(KC);
        let mut blocks = Vec::with_capacity(n_blocks);
        let mut total = 0;
        for bi in 0..n_blocks {
            let p0 = bi * KC;
            let kc = KC.min(k - p0);
            blocks.push((p0, kc, total));
            total += n_panels * kc * NR;
        }
        let mut buf = pool::take_scratch(total);
        for &(p0, kc, off) in &blocks {
            for jp in 0..n_panels {
                let col0 = jp * NR;
                let nr = NR.min(n - col0);
                let panel = &mut buf[off + jp * kc * NR..off + (jp + 1) * kc * NR];
                if nr < NR {
                    panel.fill(0.0);
                }
                if tb {
                    // b physically (n, k): column j of op(b) is row j of b.
                    for jj in 0..nr {
                        let src = &b[(col0 + jj) * k + p0..(col0 + jj) * k + p0 + kc];
                        for (p, &v) in src.iter().enumerate() {
                            panel[p * NR + jj] = v;
                        }
                    }
                } else {
                    for (p, chunk) in panel.chunks_exact_mut(NR).enumerate() {
                        let r = p0 + p;
                        chunk[..nr].copy_from_slice(&b[r * n + col0..r * n + col0 + nr]);
                    }
                }
            }
        }
        PackedB {
            buf,
            blocks,
            n_panels,
        }
    }

    /// Return the backing buffer to the pool.
    pub(crate) fn recycle(self) {
        pool::recycle(self.buf);
    }
}

/// Pack `mr` rows of `op(a)` (rows `row0..row0+mr`, depth `p0..p0+kc`)
/// into `ap` with layout `[p][i]`, zero-padded to `MR` rows.
#[allow(clippy::too_many_arguments)]
fn pack_a_panel(
    ta: bool,
    a: &[f32],
    m: usize,
    k: usize,
    row0: usize,
    mr: usize,
    p0: usize,
    kc: usize,
    ap: &mut [f32],
) {
    debug_assert!(ap.len() >= kc * MR);
    let ap = &mut ap[..kc * MR];
    if mr < MR {
        ap.fill(0.0);
    }
    if ta {
        // a physically (k, m): row i of op(a) is column i of a.
        for (p, chunk) in ap.chunks_exact_mut(MR).enumerate() {
            let r = p0 + p;
            chunk[..mr].copy_from_slice(&a[r * m + row0..r * m + row0 + mr]);
        }
    } else {
        for i in 0..mr {
            let src = &a[(row0 + i) * k + p0..(row0 + i) * k + p0 + kc];
            for (p, &v) in src.iter().enumerate() {
                ap[p * MR + i] = v;
            }
        }
    }
}

/// AVX2 8×8 microkernel: eight 8-lane accumulators seeded from the
/// destination rows, one multiply + one add per product (no FMA),
/// ascending-`p` — the scalar kernels' exact float-operation order per
/// output element. Only called for full `MR`×`NR` tiles.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
// SAFETY: callers check `simd_available()` (AVX2 present) before calling
// and guarantee `ap` holds `kc·MR` packed floats, `bp` holds `kc·NR`,
// and `c` addresses a full 8×8 tile with row stride `ldc` inside the
// output buffer; unaligned load/store intrinsics are used throughout, so
// no alignment requirement beyond f32.
unsafe fn mk8x8_avx2(kc: usize, ap: *const f32, bp: *const f32, c: *mut f32, ldc: usize) {
    use std::arch::x86_64::*;
    let mut acc0 = _mm256_loadu_ps(c);
    let mut acc1 = _mm256_loadu_ps(c.add(ldc));
    let mut acc2 = _mm256_loadu_ps(c.add(2 * ldc));
    let mut acc3 = _mm256_loadu_ps(c.add(3 * ldc));
    let mut acc4 = _mm256_loadu_ps(c.add(4 * ldc));
    let mut acc5 = _mm256_loadu_ps(c.add(5 * ldc));
    let mut acc6 = _mm256_loadu_ps(c.add(6 * ldc));
    let mut acc7 = _mm256_loadu_ps(c.add(7 * ldc));
    for p in 0..kc {
        let bv = _mm256_loadu_ps(bp.add(p * NR));
        let ab = ap.add(p * MR);
        acc0 = _mm256_add_ps(acc0, _mm256_mul_ps(_mm256_broadcast_ss(&*ab), bv));
        acc1 = _mm256_add_ps(acc1, _mm256_mul_ps(_mm256_broadcast_ss(&*ab.add(1)), bv));
        acc2 = _mm256_add_ps(acc2, _mm256_mul_ps(_mm256_broadcast_ss(&*ab.add(2)), bv));
        acc3 = _mm256_add_ps(acc3, _mm256_mul_ps(_mm256_broadcast_ss(&*ab.add(3)), bv));
        acc4 = _mm256_add_ps(acc4, _mm256_mul_ps(_mm256_broadcast_ss(&*ab.add(4)), bv));
        acc5 = _mm256_add_ps(acc5, _mm256_mul_ps(_mm256_broadcast_ss(&*ab.add(5)), bv));
        acc6 = _mm256_add_ps(acc6, _mm256_mul_ps(_mm256_broadcast_ss(&*ab.add(6)), bv));
        acc7 = _mm256_add_ps(acc7, _mm256_mul_ps(_mm256_broadcast_ss(&*ab.add(7)), bv));
    }
    _mm256_storeu_ps(c, acc0);
    _mm256_storeu_ps(c.add(ldc), acc1);
    _mm256_storeu_ps(c.add(2 * ldc), acc2);
    _mm256_storeu_ps(c.add(3 * ldc), acc3);
    _mm256_storeu_ps(c.add(4 * ldc), acc4);
    _mm256_storeu_ps(c.add(5 * ldc), acc5);
    _mm256_storeu_ps(c.add(6 * ldc), acc6);
    _mm256_storeu_ps(c.add(7 * ldc), acc7);
}

/// Portable microkernel for edge tiles (`mr < MR` or `nr < NR`) and
/// non-AVX2 hosts: per output element, the identical seeded ascending-`p`
/// multiply-then-add sequence as the AVX2 kernel — lane parallelism never
/// changes a per-element result, so both paths agree bitwise.
fn mk_edge(kc: usize, ap: &[f32], bp: &[f32], c: &mut [f32], ldc: usize, mr: usize, nr: usize) {
    debug_assert!(ap.len() >= kc * MR && bp.len() >= kc * NR);
    for i in 0..mr {
        let mut acc = [0.0f32; NR];
        acc[..nr].copy_from_slice(&c[i * ldc..i * ldc + nr]);
        for p in 0..kc {
            let aa = ap[p * MR + i];
            let bv = &bp[p * NR..p * NR + NR];
            for (accv, &bb) in acc.iter_mut().zip(bv) {
                *accv += aa * bb;
            }
        }
        c[i * ldc..i * ldc + nr].copy_from_slice(&acc[..nr]);
    }
}

/// SIMD GEMM over `nrows` output rows starting at global row `row_start`,
/// against pre-packed B blocks. `c_chunk` holds exactly those rows
/// (chunk-local row 0 = global `row_start`). Blocks accumulate into `c`
/// in ascending-`k` order, preserving the per-element float sequence.
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm_simd_rows(
    ta: bool,
    a: &[f32],
    bp: &PackedB,
    c_chunk: &mut [f32],
    m: usize,
    n: usize,
    k: usize,
    row_start: usize,
    nrows: usize,
) {
    debug_assert_eq!(c_chunk.len(), nrows * n);
    #[cfg(target_arch = "x86_64")]
    let avx2 = simd_available();
    let mut ap = pool::take_scratch(KC * MR);
    for &(p0, kc, off) in &bp.blocks {
        let mut band = 0;
        while band < nrows {
            let mr = MR.min(nrows - band);
            pack_a_panel(ta, a, m, k, row_start + band, mr, p0, kc, &mut ap);
            for jp in 0..bp.n_panels {
                let col0 = jp * NR;
                let nr = NR.min(n - col0);
                let panel = &bp.buf[off + jp * kc * NR..off + (jp + 1) * kc * NR];
                #[cfg(target_arch = "x86_64")]
                if avx2 && mr == MR && nr == NR {
                    // SAFETY: `ap` holds `kc·MR` packed floats, `panel`
                    // holds `kc·NR`, and the full 8×8 destination tile at
                    // rows `band..band+8`, cols `col0..col0+8` lies inside
                    // `c_chunk` (`mr == MR`, `nr == NR` checked above);
                    // `mk8x8_avx2` requires AVX2, checked at runtime.
                    unsafe {
                        mk8x8_avx2(
                            kc,
                            ap.as_ptr(),
                            panel.as_ptr(),
                            c_chunk.as_mut_ptr().add(band * n + col0),
                            n,
                        );
                    }
                    continue;
                }
                mk_edge(kc, &ap, panel, &mut c_chunk[band * n + col0..], n, mr, nr);
            }
            band += MR;
        }
    }
    pool::recycle(ap);
}

/// Single-threaded SIMD GEMM (`c += op(a)·op(b)`), any shape. Bit-exact
/// vs [`crate::gemm_tiled`] always, and vs [`crate::gemm_naive`] under
/// the same accumulation contract (see module docs).
#[allow(clippy::too_many_arguments)]
pub fn gemm_simd(
    ta: bool,
    tb: bool,
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
) {
    gemm_simd_with_threads(ta, tb, m, n, k, a, b, c, 1);
}

/// SIMD GEMM with output rows partitioned across `threads` scoped worker
/// threads. Every worker runs the identical kernel over a disjoint,
/// contiguous, `MR`-aligned row range of `c` against the same packed B,
/// so the result is bit-identical to `threads = 1` for every count.
#[allow(clippy::too_many_arguments)]
pub fn gemm_simd_with_threads(
    ta: bool,
    tb: bool,
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    threads: usize,
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    let bp = PackedB::pack(tb, b, k, n);
    let bands = m.div_ceil(MR);
    let threads = threads.clamp(1, bands.max(1));
    if threads == 1 {
        gemm_simd_rows(ta, a, &bp, c, m, n, k, 0, m);
        bp.recycle();
        return;
    }
    let rows_per = bands.div_ceil(threads) * MR;
    let bp_ref = &bp;
    std::thread::scope(|s| {
        let mut rest = c;
        let mut row0 = 0;
        while row0 < m {
            let take = rows_per.min(m - row0);
            let (chunk, tail) = rest.split_at_mut(take * n);
            rest = tail;
            let r0 = row0;
            s.spawn(move || {
                gemm_simd_rows(ta, a, bp_ref, chunk, m, n, k, r0, take);
            });
            row0 += take;
        }
    });
    bp.recycle();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops_matmul::{gemm_naive, gemm_tiled};

    fn mat(seed: u64, len: usize) -> Vec<f32> {
        let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..len)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                ((s >> 40) as f32 / (1u64 << 24) as f32) - 0.5
            })
            .collect()
    }

    #[test]
    fn simd_bit_exact_vs_naive_from_zero() {
        for (m, n, k) in [
            (8, 8, 8),
            (64, 64, 64),
            (13, 7, 9),
            (1, 9, 4),
            (37, 29, 300), // multiple KC blocks
            (128, 768, 64),
        ] {
            let a = mat(m as u64 ^ 1, m * k);
            let b = mat(n as u64 ^ 2, k * n);
            let mut c0 = vec![0.0; m * n];
            let mut c1 = vec![0.0; m * n];
            gemm_naive(false, false, m, n, k, &a, &b, &mut c0);
            gemm_simd(false, false, m, n, k, &a, &b, &mut c1);
            assert_eq!(c0, c1, "({m},{n},{k}) simd must be bit-exact vs naive");
        }
    }

    #[test]
    fn simd_bit_exact_vs_tiled_all_variants_nonzero_c() {
        // Strongest contract: simd == tiled bitwise for every transpose
        // pair even when accumulating into non-zero c (both kernels seed
        // their accumulators from c and add ascending-k products).
        let (m, n, k) = (21, 19, 67);
        let seed = mat(5, m * n);
        for ta in [false, true] {
            for tb in [false, true] {
                let a = mat(3, m * k);
                let b = mat(4, k * n);
                let mut c0 = seed.clone();
                let mut c1 = seed.clone();
                gemm_tiled(ta, tb, m, n, k, &a, &b, &mut c0);
                gemm_simd(ta, tb, m, n, k, &a, &b, &mut c1);
                assert_eq!(c0, c1, "({ta},{tb}) simd must match tiled bitwise");
            }
        }
    }

    #[test]
    fn simd_threaded_bit_identical_to_serial() {
        let (m, n, k) = (37, 29, 23);
        let a = mat(7, m * k);
        let b = mat(8, k * n);
        let mut c1 = vec![0.0; m * n];
        gemm_simd_with_threads(false, false, m, n, k, &a, &b, &mut c1, 1);
        for threads in [2, 3, 5, 8] {
            let mut ct = vec![0.0; m * n];
            gemm_simd_with_threads(false, false, m, n, k, &a, &b, &mut ct, threads);
            assert_eq!(c1, ct, "threads={threads} must be bit-identical");
        }
    }

    #[test]
    fn kc_block_boundary_exact() {
        // k straddling the KC=256 boundary exercises multi-block
        // accumulation into c.
        for k in [255, 256, 257, 512, 513] {
            let (m, n) = (9, 11);
            let a = mat(1, m * k);
            let b = mat(2, k * n);
            let seed = mat(3, m * n);
            let mut c0 = seed.clone();
            let mut c1 = seed.clone();
            gemm_tiled(false, false, m, n, k, &a, &b, &mut c0);
            gemm_simd(false, false, m, n, k, &a, &b, &mut c1);
            assert_eq!(c0, c1, "k={k} must be bit-exact across KC blocks");
        }
    }
}
