//! `TensorStore`: a named collection of tensors with a compact binary
//! serialization format (`ZGT1`). Used for model checkpoints — TracIn-style
//! influence estimation replays gradients at stored checkpoints, so
//! checkpoint save/load is a first-class citizen here.
//!
//! Format (little-endian):
//! ```text
//! magic "ZGT1" | u32 entry_count |
//!   per entry: u32 name_len | name bytes | u32 rank | u32 dims... | f32 data...
//! ```

use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::path::Path;

use crate::shape::Shape;
use crate::tensor::Tensor;

const MAGIC: &[u8; 4] = b"ZGT1";

/// Named tensor collection with deterministic (sorted) ordering.
#[derive(Default)]
pub struct TensorStore {
    entries: BTreeMap<String, Tensor>,
}

impl TensorStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert (or replace) a tensor under `name`. Data is detached — stores
    /// hold values, not graph history.
    pub fn insert(&mut self, name: impl Into<String>, t: &Tensor) {
        self.entries.insert(name.into(), t.detach());
    }

    /// Look up a tensor by name.
    pub fn get(&self, name: &str) -> Option<&Tensor> {
        self.entries.get(name)
    }

    /// Names in sorted order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.entries.keys().map(String::as_str)
    }

    /// Number of stored tensors.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total number of f32 elements across all tensors.
    pub fn numel(&self) -> usize {
        self.entries.values().map(Tensor::numel).sum()
    }

    /// Serialize to any writer.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        w.write_all(MAGIC)?;
        w.write_all(&(self.entries.len() as u32).to_le_bytes())?;
        for (name, t) in &self.entries {
            w.write_all(&(name.len() as u32).to_le_bytes())?;
            w.write_all(name.as_bytes())?;
            w.write_all(&(t.rank() as u32).to_le_bytes())?;
            for &d in t.dims() {
                w.write_all(&(d as u32).to_le_bytes())?;
            }
            let data = t.data();
            let mut buf = Vec::with_capacity(data.len() * 4);
            for &v in data.iter() {
                buf.extend_from_slice(&v.to_le_bytes());
            }
            w.write_all(&buf)?;
        }
        Ok(())
    }

    /// Deserialize from any reader.
    pub fn read_from(r: &mut impl Read) -> io::Result<Self> {
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not a ZGT1 tensor store",
            ));
        }
        let count = read_u32(r)? as usize;
        let mut entries = BTreeMap::new();
        for _ in 0..count {
            let name_len = read_u32(r)? as usize;
            let mut name = vec![0u8; name_len];
            r.read_exact(&mut name)?;
            let name = String::from_utf8(name)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
            let rank = read_u32(r)? as usize;
            let mut dims = Vec::with_capacity(rank);
            for _ in 0..rank {
                dims.push(read_u32(r)? as usize);
            }
            let shape = Shape(dims);
            let n = shape.numel();
            // Guard against corrupt headers demanding absurd allocations
            // (1 GiB of f32 is far beyond any checkpoint in this system).
            const MAX_ELEMS: usize = 256 * 1024 * 1024;
            if n > MAX_ELEMS {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("tensor '{name}' claims {n} elements, over the {MAX_ELEMS} cap"),
                ));
            }
            let mut buf = vec![0u8; n * 4];
            r.read_exact(&mut buf)?;
            let data: Vec<f32> = buf
                .chunks_exact(4)
                .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                .collect();
            entries.insert(name, Tensor::from_vec(data, shape));
        }
        Ok(TensorStore { entries })
    }

    /// Save to a file path.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
        self.write_to(&mut f)
    }

    /// Load from a file path.
    pub fn load(path: impl AsRef<Path>) -> io::Result<Self> {
        let mut f = std::io::BufReader::new(std::fs::File::open(path)?);
        Self::read_from(&mut f)
    }
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_in_memory() {
        let mut store = TensorStore::new();
        store.insert("w", &Tensor::from_vec(vec![1.5, -2.5], [2]));
        store.insert("b", &Tensor::from_vec(vec![0.0; 6], [2, 3]));
        let mut buf = Vec::new();
        store.write_to(&mut buf).unwrap();
        let loaded = TensorStore::read_from(&mut buf.as_slice()).unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded.get("w").unwrap().to_vec(), vec![1.5, -2.5]);
        assert_eq!(loaded.get("b").unwrap().dims(), &[2, 3]);
    }

    #[test]
    fn rejects_bad_magic() {
        let buf = b"NOPE\0\0\0\0".to_vec();
        assert!(TensorStore::read_from(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn rejects_absurd_allocation_claim() {
        // Header claiming a ~16 PiB tensor must be rejected, not allocated.
        let mut buf = Vec::new();
        buf.extend_from_slice(b"ZGT1");
        buf.extend_from_slice(&1u32.to_le_bytes()); // one entry
        buf.extend_from_slice(&1u32.to_le_bytes()); // name len
        buf.push(b'x');
        buf.extend_from_slice(&2u32.to_le_bytes()); // rank 2
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.extend_from_slice(&1024u32.to_le_bytes());
        let err = match TensorStore::read_from(&mut buf.as_slice()) {
            Err(e) => e,
            Ok(_) => panic!("absurd allocation claim must be rejected"),
        };
        assert!(err.to_string().contains("cap"));
    }

    #[test]
    fn insert_detaches_from_graph() {
        let p = Tensor::param(vec![1.0], [1]);
        let mut store = TensorStore::new();
        store.insert("p", &p);
        assert!(!store.get("p").unwrap().requires_grad());
    }

    #[test]
    fn names_sorted_and_numel() {
        let mut store = TensorStore::new();
        store.insert("z", &Tensor::zeros([3]));
        store.insert("a", &Tensor::zeros([2, 2]));
        let names: Vec<&str> = store.names().collect();
        assert_eq!(names, vec!["a", "z"]);
        assert_eq!(store.numel(), 7);
        assert!(!store.is_empty());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("zg_store_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.zgt");
        let mut store = TensorStore::new();
        store.insert("x", &Tensor::from_vec(vec![9.0, 8.0, 7.0], [3]));
        store.save(&path).unwrap();
        let loaded = TensorStore::load(&path).unwrap();
        assert_eq!(loaded.get("x").unwrap().to_vec(), vec![9.0, 8.0, 7.0]);
        std::fs::remove_file(&path).ok();
    }
}
