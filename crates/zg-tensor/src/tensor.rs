//! The [`Tensor`] type: an f32 n-dimensional array participating in a
//! dynamically-built reverse-mode autodiff graph.
//!
//! Design: each `Tensor` is a cheap `Rc` handle onto an immutable-shape node.
//! Operations build fresh nodes that record their parents and a backward
//! closure; [`Tensor::backward`] runs a topological sweep. Creation inside a
//! [`crate::no_grad`] scope detaches nodes from the graph, which is how
//! inference avoids tape overhead.

use std::cell::{Cell, Ref, RefCell, RefMut};
use std::rc::Rc;

use crate::shape::Shape;

thread_local! {
    static NEXT_ID: Cell<u64> = const { Cell::new(0) };
    static NO_GRAD_DEPTH: Cell<u32> = const { Cell::new(0) };
}

fn next_id() -> u64 {
    NEXT_ID.with(|c| {
        let id = c.get();
        c.set(id + 1);
        id
    })
}

/// Run `f` with gradient recording disabled.
///
/// Tensors created inside the scope carry no parents or backward closures,
/// so forward passes for evaluation cost no tape memory.
pub fn no_grad<T>(f: impl FnOnce() -> T) -> T {
    NO_GRAD_DEPTH.with(|c| c.set(c.get() + 1));
    let out = f();
    NO_GRAD_DEPTH.with(|c| c.set(c.get() - 1));
    out
}

/// Whether gradient recording is currently enabled on this thread.
pub fn grad_enabled() -> bool {
    NO_GRAD_DEPTH.with(|c| c.get() == 0)
}

/// Backward closure: reads the output node's gradient and accumulates into
/// its parents' gradients.
pub(crate) type BackwardFn = Box<dyn Fn(&Tensor)>;

pub(crate) struct Inner {
    pub(crate) id: u64,
    pub(crate) shape: Shape,
    pub(crate) data: RefCell<Vec<f32>>,
    pub(crate) grad: RefCell<Option<Vec<f32>>>,
    pub(crate) requires_grad: Cell<bool>,
    pub(crate) parents: Vec<Tensor>,
    pub(crate) backward: Option<BackwardFn>,
    /// Whether this node was recorded on the autograd tape at construction.
    /// Feeds the debug-mode leak sanitizer (see [`crate::GraphLeakGuard`]);
    /// `parents`/`backward` cannot be consulted instead because the
    /// iterative teardown below empties them before `drop` runs.
    pub(crate) tracked: bool,
    /// Bumped on every mutable data access; lets derived caches (e.g.
    /// int8 weight calibrations) detect stale snapshots cheaply.
    pub(crate) version: Cell<u64>,
}

/// An f32 tensor with optional autograd tracking. Cloning is cheap (`Rc`).
#[derive(Clone)]
pub struct Tensor(pub(crate) Rc<Inner>);

impl Drop for Inner {
    fn drop(&mut self) {
        if self.tracked {
            crate::leak::node_dropped();
        }
        // Recycle this node's data and gradient buffers: op outputs in a
        // training step are multi-megabyte and short-lived, so returning
        // them to the thread-local pool lets the next step reuse them
        // instead of round-tripping pages through the allocator.
        crate::pool::recycle(std::mem::take(self.data.get_mut()));
        if let Some(g) = self.grad.get_mut().take() {
            crate::pool::recycle(g);
        }
        // Iterative graph teardown: a transformer training graph is a chain
        // thousands of nodes long, and the default recursive Rc drop would
        // overflow the stack — both via `parents` and via the parent handles
        // captured inside `backward` closures. Unwind on a worklist, dropping
        // each node's closure while the stack still holds live clones of its
        // parents (so the closure drop cannot cascade).
        let mut stack: Vec<Tensor> = std::mem::take(&mut self.parents);
        drop(self.backward.take());
        while let Some(t) = stack.pop() {
            if let Ok(mut inner) = Rc::try_unwrap(t.0) {
                // Last handle: steal its parents before its own Drop runs
                // (which then sees an empty list and cannot recurse).
                stack.append(&mut inner.parents);
                drop(inner.backward.take());
            }
        }
    }
}

impl std::fmt::Debug for Tensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let data = self.0.data.borrow();
        let preview: Vec<f32> = data.iter().take(8).copied().collect();
        write!(
            f,
            "Tensor(id={}, shape={}, requires_grad={}, data≈{:?}{})",
            self.0.id,
            self.0.shape,
            self.0.requires_grad.get(),
            preview,
            if data.len() > 8 { "…" } else { "" }
        )
    }
}

impl Tensor {
    // ------------------------------------------------------------------
    // Construction
    // ------------------------------------------------------------------

    /// Leaf tensor from raw data. `requires_grad=false`; call
    /// [`Tensor::set_requires_grad`] (or use [`Tensor::param`]) for parameters.
    pub fn from_vec(data: Vec<f32>, shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        assert_eq!(
            data.len(),
            shape.numel(),
            "data length {} does not match shape {shape}",
            data.len()
        );
        Tensor(Rc::new(Inner {
            id: next_id(),
            shape,
            data: RefCell::new(data),
            grad: RefCell::new(None),
            requires_grad: Cell::new(false),
            parents: Vec::new(),
            backward: None,
            tracked: false,
            version: Cell::new(0),
        }))
    }

    /// Trainable leaf parameter (gradient will be accumulated on backward).
    pub fn param(data: Vec<f32>, shape: impl Into<Shape>) -> Self {
        let t = Self::from_vec(data, shape);
        t.set_requires_grad(true);
        t
    }

    /// Scalar (rank-0) tensor.
    pub fn scalar(v: f32) -> Self {
        Self::from_vec(vec![v], Shape::default())
    }

    /// All-zeros tensor.
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        let n = shape.numel();
        Self::from_vec(crate::pool::take_zeroed(n), shape)
    }

    /// All-ones tensor.
    pub fn ones(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        let n = shape.numel();
        Self::from_vec(vec![1.0; n], shape)
    }

    /// Tensor filled with `v`.
    pub fn full(shape: impl Into<Shape>, v: f32) -> Self {
        let shape = shape.into();
        let n = shape.numel();
        Self::from_vec(vec![v; n], shape)
    }

    /// `[0, 1, ..., n-1]` as a rank-1 tensor.
    pub fn arange(n: usize) -> Self {
        Self::from_vec((0..n).map(|i| i as f32).collect(), [n])
    }

    /// Internal: build an op-output node. When recording is disabled (or no
    /// parent participates in the graph) the node is detached.
    pub(crate) fn from_op(
        data: Vec<f32>,
        shape: Shape,
        parents: Vec<Tensor>,
        backward: BackwardFn,
    ) -> Self {
        assert_eq!(data.len(), shape.numel());
        let track = grad_enabled() && parents.iter().any(|p| p.0.requires_grad.get());
        if track {
            crate::leak::node_created();
        }
        Tensor(Rc::new(Inner {
            id: next_id(),
            shape,
            data: RefCell::new(data),
            grad: RefCell::new(None),
            requires_grad: Cell::new(track),
            parents: if track { parents } else { Vec::new() },
            backward: if track { Some(backward) } else { None },
            tracked: track,
            version: Cell::new(0),
        }))
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// Unique node id (monotonically increasing per thread).
    pub fn id(&self) -> u64 {
        self.0.id
    }

    /// Tensor shape.
    pub fn shape(&self) -> &Shape {
        &self.0.shape
    }

    /// Dimension sizes.
    pub fn dims(&self) -> &[usize] {
        self.0.shape.dims()
    }

    /// Number of elements.
    pub fn numel(&self) -> usize {
        self.0.shape.numel()
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.shape.rank()
    }

    /// Borrow the underlying data (row-major).
    pub fn data(&self) -> Ref<'_, Vec<f32>> {
        self.0.data.borrow()
    }

    /// Mutably borrow the underlying data. Only sensible for leaves
    /// (optimizer updates); mutating op outputs invalidates saved state.
    pub fn data_mut(&self) -> RefMut<'_, Vec<f32>> {
        self.0.version.set(self.0.version.get() + 1);
        self.0.data.borrow_mut()
    }

    /// Monotonic data-mutation counter: bumped by [`Tensor::data_mut`]
    /// and [`Tensor::set_data`]. Caches derived from the data (int8
    /// weight calibrations) store the version they saw and recompute on
    /// mismatch.
    pub fn data_version(&self) -> u64 {
        self.0.version.get()
    }

    /// Copy data out as a `Vec`.
    pub fn to_vec(&self) -> Vec<f32> {
        self.0.data.borrow().clone()
    }

    /// Scalar value of a single-element tensor.
    pub fn item(&self) -> f32 {
        let d = self.0.data.borrow();
        assert_eq!(d.len(), 1, "item() on tensor with {} elements", d.len());
        d[0]
    }

    /// Element at a multi-dimensional index.
    pub fn at(&self, index: &[usize]) -> f32 {
        let strides = self.0.shape.strides();
        assert_eq!(index.len(), strides.len());
        let mut off = 0;
        for (i, (&ix, &st)) in index.iter().zip(&strides).enumerate() {
            assert!(ix < self.dims()[i], "index {index:?} out of bounds");
            off += ix * st;
        }
        self.0.data.borrow()[off]
    }

    /// Whether this node participates in the autograd graph.
    pub fn requires_grad(&self) -> bool {
        self.0.requires_grad.get()
    }

    /// Toggle gradient accumulation for a leaf.
    ///
    /// Panics when called on an op output — detach instead.
    pub fn set_requires_grad(&self, v: bool) {
        assert!(
            self.0.parents.is_empty(),
            "set_requires_grad on non-leaf tensor"
        );
        self.0.requires_grad.set(v);
    }

    /// Current accumulated gradient, if any.
    pub fn grad(&self) -> Option<Vec<f32>> {
        self.0.grad.borrow().clone()
    }

    /// Run `f` over the accumulated gradient without cloning it, if one
    /// is present. The optimizer's fused clip+step uses this to read each
    /// gradient exactly once per traversal.
    pub fn with_grad<T>(&self, f: impl FnOnce(&[f32]) -> T) -> Option<T> {
        self.0.grad.borrow().as_deref().map(f)
    }

    /// Gradient, or zeros when none has been accumulated.
    pub fn grad_or_zeros(&self) -> Vec<f32> {
        self.0
            .grad
            .borrow()
            .clone()
            .unwrap_or_else(|| vec![0.0; self.numel()])
    }

    /// Clear this tensor's gradient.
    pub fn zero_grad(&self) {
        if let Some(g) = self.0.grad.borrow_mut().take() {
            crate::pool::recycle(g);
        }
    }

    /// Accumulate `g` into this tensor's gradient buffer.
    pub fn accumulate_grad(&self, g: &[f32]) {
        assert_eq!(g.len(), self.numel(), "gradient shape mismatch");
        let mut slot = self.0.grad.borrow_mut();
        match slot.as_mut() {
            Some(buf) => {
                for (b, &x) in buf.iter_mut().zip(g) {
                    *b += x;
                }
            }
            None => {
                let mut buf = crate::pool::take_scratch(g.len());
                buf.copy_from_slice(g);
                *slot = Some(buf);
            }
        }
    }

    /// Borrow this node's gradient inside a backward closure.
    ///
    /// Centralizes the one unwrap every backward closure needs: the sweep
    /// in `autograd.rs` only invokes a closure after checking that the
    /// output gradient is present, so the `None` arm is unreachable from
    /// the public API.
    pub(crate) fn out_grad(&self) -> Ref<'_, Vec<f32>> {
        Ref::map(self.0.grad.borrow(), |g| {
            // INVARIANT: backward_with checks `grad.borrow().is_some()`
            // before running the closure that calls this.
            g.as_ref().expect("output grad seeded")
        })
    }

    /// A detached copy of this tensor's values (new leaf, no graph history).
    pub fn detach(&self) -> Tensor {
        Tensor::from_vec(self.to_vec(), self.shape().clone())
    }

    /// Overwrite this leaf's data in place (e.g. optimizer step).
    pub fn set_data(&self, data: &[f32]) {
        self.0.version.set(self.0.version.get() + 1);
        let mut d = self.0.data.borrow_mut();
        assert_eq!(d.len(), data.len());
        d.copy_from_slice(data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_roundtrip() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]);
        assert_eq!(t.dims(), &[2, 2]);
        assert_eq!(t.to_vec(), vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(t.at(&[1, 0]), 3.0);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn from_vec_shape_mismatch_panics() {
        Tensor::from_vec(vec![1.0; 3], [2, 2]);
    }

    #[test]
    fn scalar_item() {
        assert_eq!(Tensor::scalar(3.5).item(), 3.5);
        assert_eq!(Tensor::scalar(3.5).rank(), 0);
    }

    #[test]
    fn zeros_ones_full_arange() {
        assert_eq!(Tensor::zeros([2, 3]).to_vec(), vec![0.0; 6]);
        assert_eq!(Tensor::ones([3]).to_vec(), vec![1.0; 3]);
        assert_eq!(Tensor::full([2], 7.0).to_vec(), vec![7.0, 7.0]);
        assert_eq!(Tensor::arange(4).to_vec(), vec![0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn grad_accumulation() {
        let t = Tensor::param(vec![0.0; 3], [3]);
        assert!(t.grad().is_none());
        t.accumulate_grad(&[1.0, 2.0, 3.0]);
        t.accumulate_grad(&[1.0, 1.0, 1.0]);
        assert_eq!(t.grad().unwrap(), vec![2.0, 3.0, 4.0]);
        t.zero_grad();
        assert!(t.grad().is_none());
        assert_eq!(t.grad_or_zeros(), vec![0.0; 3]);
    }

    #[test]
    fn no_grad_scope_detaches() {
        assert!(grad_enabled());
        no_grad(|| {
            assert!(!grad_enabled());
            no_grad(|| assert!(!grad_enabled()));
            assert!(!grad_enabled());
        });
        assert!(grad_enabled());
    }

    #[test]
    fn detach_breaks_history() {
        let t = Tensor::param(vec![1.0, 2.0], [2]);
        let d = t.detach();
        assert!(!d.requires_grad());
        assert_eq!(d.to_vec(), t.to_vec());
    }

    #[test]
    fn set_data_updates_leaf() {
        let t = Tensor::param(vec![0.0; 2], [2]);
        t.set_data(&[5.0, 6.0]);
        assert_eq!(t.to_vec(), vec![5.0, 6.0]);
    }
}
