//! Bit-identity of the op fast paths: every gated kernel (sliced broadcast
//! binaries, dead-gradient GEMM skip, run-copy/transpose permute and
//! broadcast gathers) must produce outputs and gradients **bitwise equal**
//! to the strided reference implementations, across every broadcast plan
//! and requires-grad combination.

use zg_tensor::{set_op_fast_paths, Tensor};

/// Deterministic quarter-quantized values in [-2, 2): coarse enough to
/// produce exact ties (exercising maximum/minimum tie routing) and signed
/// zeros are avoided only by luck, not construction — the comparison is on
/// raw bits either way.
fn fill(n: usize, seed: u64) -> Vec<f32> {
    let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
    (0..n)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            ((s % 16) as f32 - 8.0) * 0.25
        })
        .collect()
}

/// Like `fill`, but strictly positive (safe denominators).
fn fill_pos(n: usize, seed: u64) -> Vec<f32> {
    fill(n, seed).into_iter().map(|v| v * v + 0.25).collect()
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn with_fast<R>(enabled: bool, f: impl FnOnce() -> R) -> R {
    let prev = set_op_fast_paths(enabled);
    let r = f();
    set_op_fast_paths(prev);
    r
}

type OpResult = (Vec<u32>, Option<Vec<u32>>, Option<Vec<u32>>);

/// Run `op`, backprop a position-varying gradient through it, and return
/// (output bits, grad-a bits, grad-b bits).
fn run_binop(
    sa: &[usize],
    sb: &[usize],
    op: impl Fn(&Tensor, &Tensor) -> Tensor,
    need_a: bool,
    need_b: bool,
    positive_b: bool,
) -> OpResult {
    let na: usize = sa.iter().product();
    let nb: usize = sb.iter().product();
    let av = fill(na, 3);
    let bv = if positive_b {
        fill_pos(nb, 5)
    } else {
        fill(nb, 5)
    };
    let a = if need_a {
        Tensor::param(av, sa.to_vec())
    } else {
        Tensor::from_vec(av, sa.to_vec())
    };
    let b = if need_b {
        Tensor::param(bv, sb.to_vec())
    } else {
        Tensor::from_vec(bv, sb.to_vec())
    };
    let c = op(&a, &b);
    let out = bits(&c.data());
    let w = Tensor::from_vec(fill(c.numel(), 11), c.dims().to_vec());
    c.mul(&w).sum().backward();
    (out, a.grad().map(|g| bits(&g)), b.grad().map(|g| bits(&g)))
}

/// Shape pairs covering every plan combination the classifier produces:
/// Full/Full, leading-broadcast cycles, trailing-broadcast repeats, scalar
/// operands, and genuinely strided fallbacks (middle or two-sided
/// broadcasts).
const SHAPE_PAIRS: &[(&[usize], &[usize])] = &[
    (&[2, 3, 4], &[2, 3, 4]),
    (&[2, 3, 4], &[4]),
    (&[2, 3, 4], &[3, 4]),
    (&[2, 3, 4], &[1, 3, 4]),
    (&[3, 4], &[2, 3, 4]),
    (&[2, 3, 4], &[2, 3, 1]),
    (&[2, 3, 1], &[2, 3, 4]),
    (&[2, 3, 4], &[2, 1, 1]),
    (&[2, 3, 4], &[1]),
    (&[1], &[2, 3, 4]),
    (&[2, 3, 4], &[]),
    (&[3, 1], &[1, 4]),
    (&[2, 3, 4], &[2, 1, 4]),
    (&[2, 1, 4], &[1, 3, 1]),
];

#[test]
fn binary_ops_bitwise_match_reference_across_plans() {
    type BinOp = fn(&Tensor, &Tensor) -> Tensor;
    let ops: &[(&str, BinOp, bool)] = &[
        ("add", Tensor::add, false),
        ("sub", Tensor::sub, false),
        ("mul", Tensor::mul, false),
        ("div", Tensor::div, true),
        ("maximum", Tensor::maximum, false),
        ("minimum", Tensor::minimum, false),
    ];
    for &(name, op, positive_b) in ops {
        for &(sa, sb) in SHAPE_PAIRS {
            for (need_a, need_b) in [(true, true), (true, false), (false, true)] {
                let slow = with_fast(false, || run_binop(sa, sb, op, need_a, need_b, positive_b));
                let fast = with_fast(true, || run_binop(sa, sb, op, need_a, need_b, positive_b));
                assert_eq!(
                    slow, fast,
                    "{name} {sa:?} x {sb:?} need=({need_a},{need_b}) diverged"
                );
            }
        }
    }
}

fn run_permute(dims: &[usize], axes: &[usize]) -> OpResult {
    let n: usize = dims.iter().product();
    let x = Tensor::param(fill(n, 17), dims.to_vec());
    let y = x.permute(axes);
    let out = bits(&y.data());
    let w = Tensor::from_vec(fill(n, 23), y.dims().to_vec());
    y.mul(&w).sum().backward();
    (out, x.grad().map(|g| bits(&g)), None)
}

#[test]
fn permute_bitwise_matches_reference() {
    let cases: &[(&[usize], &[usize])] = &[
        (&[2, 3, 4, 5], &[0, 2, 1, 3]), // run-copy: last axis fixed
        (&[2, 3, 4, 5], &[0, 1, 3, 2]), // trailing transpose
        (&[2, 3, 4, 5], &[3, 2, 1, 0]), // full reversal
        (&[2, 3, 4, 5], &[2, 0, 3, 1]), // irregular
        (&[6, 7], &[1, 0]),             // plain matrix transpose
        (&[2, 3, 4], &[0, 1, 2]),       // identity (single full run)
        (&[5], &[0]),                   // rank 1
    ];
    for &(dims, axes) in cases {
        let slow = with_fast(false, || run_permute(dims, axes));
        let fast = with_fast(true, || run_permute(dims, axes));
        assert_eq!(slow, fast, "permute {dims:?} by {axes:?} diverged");
    }
}

fn run_broadcast_to(dims: &[usize], target: &[usize]) -> OpResult {
    let n: usize = dims.iter().product();
    let x = Tensor::param(fill(n, 29), dims.to_vec());
    let y = x.broadcast_to(target.to_vec());
    let out = bits(&y.data());
    let w = Tensor::from_vec(fill(y.numel(), 31), target.to_vec());
    y.mul(&w).sum().backward();
    (out, x.grad().map(|g| bits(&g)), None)
}

#[test]
fn broadcast_to_bitwise_matches_reference() {
    let cases: &[(&[usize], &[usize])] = &[
        (&[2, 1, 4], &[2, 3, 4]), // middle broadcast: run-copy of 4
        (&[4], &[2, 3, 4]),       // leading broadcast: run-copy of 4
        (&[2, 3, 1], &[2, 3, 4]), // trailing broadcast: elementwise
        (&[2, 1], &[2, 3]),
        (&[], &[2, 3]),
        (&[1, 3, 1], &[2, 3, 4]),
    ];
    for &(dims, target) in cases {
        let slow = with_fast(false, || run_broadcast_to(dims, target));
        let fast = with_fast(true, || run_broadcast_to(dims, target));
        assert_eq!(slow, fast, "broadcast {dims:?} -> {target:?} diverged");
    }
}

fn run_matmul(sa: &[usize], sb: &[usize], need_a: bool, need_b: bool) -> OpResult {
    let na: usize = sa.iter().product();
    let nb: usize = sb.iter().product();
    let av = fill(na, 37);
    let bv = fill(nb, 41);
    let a = if need_a {
        Tensor::param(av, sa.to_vec())
    } else {
        Tensor::from_vec(av, sa.to_vec())
    };
    let b = if need_b {
        Tensor::param(bv, sb.to_vec())
    } else {
        Tensor::from_vec(bv, sb.to_vec())
    };
    let c = a.matmul(&b);
    let out = bits(&c.data());
    let w = Tensor::from_vec(fill(c.numel(), 43), c.dims().to_vec());
    c.mul(&w).sum().backward();
    (out, a.grad().map(|g| bits(&g)), b.grad().map(|g| bits(&g)))
}

/// The dead-gradient GEMM skip must be invisible: whichever side requires
/// grad gets the exact reference gradient, including broadcast-batch
/// reduction cases.
#[test]
fn matmul_grad_skip_bitwise_matches_reference() {
    let cases: &[(&[usize], &[usize])] = &[
        (&[4, 6], &[6, 5]),
        (&[2, 3, 4], &[4, 5]),          // batched x unbatched (dB reduces)
        (&[3, 4], &[2, 4, 5]),          // unbatched x batched (dA reduces)
        (&[2, 1, 3, 4], &[1, 5, 4, 2]), // two-sided batch broadcast
    ];
    for &(sa, sb) in cases {
        for (need_a, need_b) in [(true, true), (true, false), (false, true)] {
            let slow = with_fast(false, || run_matmul(sa, sb, need_a, need_b));
            let fast = with_fast(true, || run_matmul(sa, sb, need_a, need_b));
            assert_eq!(
                slow, fast,
                "matmul {sa:?} x {sb:?} need=({need_a},{need_b}) diverged"
            );
        }
    }
}
