//! Property tests pinning the tiled and SIMD GEMM microkernels to the
//! naive reference over random shapes — including odd, non-tile- and
//! non-lane-multiple `m, n, k` — and all four transpose variants, plus
//! the int8 quantized kernel against its scalar reference.
//!
//! Contract under test:
//!
//! * every variant agrees with the naive kernel within a relative
//!   tolerance for arbitrary shapes and a non-zero initial `c`;
//! * the `tb = false` variants (sequential accumulation in the naive
//!   loops) and *all* variants starting from `c = 0` are **bit-exact**,
//!   because the tiled/SIMD kernels seed their accumulator tiles from
//!   `c` and add products in the same ascending-`k` order;
//! * the SIMD kernel is bit-identical to the tiled kernel in **all**
//!   cases (identical per-element float-op order; AVX2 lanes are
//!   independent output columns with no reassociation);
//! * the row-threaded dispatches (tiled and SIMD) are bit-identical to
//!   serial for every worker count (each worker owns a disjoint
//!   MR-aligned row range);
//! * the int8 AVX2 path is bit-identical to the scalar int8 reference
//!   (integer accumulation is exact; the dequant expression is shared).

use proptest::prelude::*;
use zg_tensor::{
    gemm_naive, gemm_simd, gemm_simd_with_threads, gemm_tiled, gemm_with_threads, QuantizedMatrix,
};

/// Max |x-y| scaled by magnitude over a result pair.
fn max_rel_err(x: &[f32], y: &[f32]) -> f32 {
    x.iter()
        .zip(y)
        .map(|(&a, &b)| (a - b).abs() / a.abs().max(b.abs()).max(1.0))
        .fold(0.0, f32::max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn tiled_matches_naive_all_variants(
        m in 1..40usize,
        n in 1..40usize,
        k in 1..40usize,
        ta in any::<bool>(),
        tb in any::<bool>(),
        seed in 0u64..1000,
    ) {
        let a: Vec<f32> = (0..m * k)
            .map(|i| ((i as f32 + seed as f32) * 0.61).sin())
            .collect();
        let b: Vec<f32> = (0..k * n)
            .map(|i| ((i as f32 * 1.37) + seed as f32).cos())
            .collect();
        let mut c0 = vec![0.0f32; m * n];
        let mut c1 = vec![0.0f32; m * n];
        gemm_naive(ta, tb, m, n, k, &a, &b, &mut c0);
        gemm_tiled(ta, tb, m, n, k, &a, &b, &mut c1);
        // From c = 0 every variant accumulates in the same order.
        prop_assert_eq!(&c0, &c1);
    }

    #[test]
    fn tiled_matches_naive_with_accumulation(
        m in 1..40usize,
        n in 1..40usize,
        k in 1..40usize,
        ta in any::<bool>(),
        tb in any::<bool>(),
    ) {
        let a: Vec<f32> = (0..m * k).map(|i| (i as f32 * 0.7).sin()).collect();
        let b: Vec<f32> = (0..k * n).map(|i| (i as f32 * 0.3).cos()).collect();
        let seed_c: Vec<f32> = (0..m * n).map(|i| (i as f32 * 0.11).tan().clamp(-3.0, 3.0)).collect();
        let mut c0 = seed_c.clone();
        let mut c1 = seed_c;
        gemm_naive(ta, tb, m, n, k, &a, &b, &mut c0);
        gemm_tiled(ta, tb, m, n, k, &a, &b, &mut c1);
        if !tb {
            // Sequential naive accumulation: bit-exact even into non-zero c.
            prop_assert_eq!(&c0, &c1);
        } else {
            // Register-accumulated naive variants round differently when
            // c != 0 (c + Σ vs ((c+x₀)+x₁)…): tolerance-based.
            prop_assert!(
                max_rel_err(&c0, &c1) < 1e-5,
                "rel err {} too large for ({}, {})",
                max_rel_err(&c0, &c1), ta, tb
            );
        }
    }

    #[test]
    fn tile_aligned_shapes_exact_all_variants(
        bands in 1usize..5,
        panels in 1usize..5,
        kmul in 1usize..6,
        ta in any::<bool>(),
        tb in any::<bool>(),
    ) {
        // Multiples of the 8×8 tile: no edge tiles, no padding in play.
        let (m, n, k) = (bands * 8, panels * 8, kmul * 4);
        let a: Vec<f32> = (0..m * k).map(|i| ((i * 7 % 23) as f32 - 11.0) * 0.25).collect();
        let b: Vec<f32> = (0..k * n).map(|i| ((i * 5 % 19) as f32 - 9.0) * 0.5).collect();
        let mut c0 = vec![0.0f32; m * n];
        let mut c1 = vec![0.0f32; m * n];
        gemm_naive(ta, tb, m, n, k, &a, &b, &mut c0);
        gemm_tiled(ta, tb, m, n, k, &a, &b, &mut c1);
        prop_assert_eq!(&c0, &c1);
    }

    #[test]
    fn threaded_rows_bit_identical(
        m in 1..40usize,
        n in 1..40usize,
        k in 1..40usize,
        threads in 2usize..9,
        ta in any::<bool>(),
        tb in any::<bool>(),
    ) {
        let a: Vec<f32> = (0..m * k).map(|i| (i as f32 * 0.91).sin()).collect();
        let b: Vec<f32> = (0..k * n).map(|i| (i as f32 * 0.47).cos()).collect();
        let mut serial = vec![0.0f32; m * n];
        let mut par = vec![0.0f32; m * n];
        gemm_with_threads(ta, tb, m, n, k, &a, &b, &mut serial, 1);
        gemm_with_threads(ta, tb, m, n, k, &a, &b, &mut par, threads);
        prop_assert_eq!(&serial, &par);
    }

    #[test]
    fn simd_matches_naive_from_zero_all_variants(
        m in 1..40usize,
        n in 1..40usize,
        k in 1..40usize,
        ta in any::<bool>(),
        tb in any::<bool>(),
        seed in 0u64..1000,
    ) {
        let a: Vec<f32> = (0..m * k)
            .map(|i| ((i as f32 + seed as f32) * 0.53).sin())
            .collect();
        let b: Vec<f32> = (0..k * n)
            .map(|i| ((i as f32 * 1.19) + seed as f32).cos())
            .collect();
        let mut c0 = vec![0.0f32; m * n];
        let mut c1 = vec![0.0f32; m * n];
        gemm_naive(ta, tb, m, n, k, &a, &b, &mut c0);
        gemm_simd(ta, tb, m, n, k, &a, &b, &mut c1);
        prop_assert_eq!(&c0, &c1);
    }

    #[test]
    fn simd_matches_tiled_bitwise_all_variants_nonzero_c(
        m in 1..40usize,
        n in 1..40usize,
        k in 1..40usize,
        ta in any::<bool>(),
        tb in any::<bool>(),
    ) {
        // Unlike the naive comparison (which needs c = 0 or tb = false),
        // SIMD vs tiled is bit-identical unconditionally: same per-element
        // order, vector lanes are independent columns.
        let a: Vec<f32> = (0..m * k).map(|i| (i as f32 * 0.83).sin()).collect();
        let b: Vec<f32> = (0..k * n).map(|i| (i as f32 * 0.29).cos()).collect();
        let seed_c: Vec<f32> = (0..m * n).map(|i| (i as f32 * 0.13).tan().clamp(-3.0, 3.0)).collect();
        let mut c0 = seed_c.clone();
        let mut c1 = seed_c;
        gemm_tiled(ta, tb, m, n, k, &a, &b, &mut c0);
        gemm_simd(ta, tb, m, n, k, &a, &b, &mut c1);
        prop_assert_eq!(&c0, &c1);
    }

    #[test]
    fn simd_threaded_bit_identical_to_serial(
        m in 1..48usize,
        n in 1..48usize,
        k in 1..48usize,
        threads in 2usize..9,
        ta in any::<bool>(),
        tb in any::<bool>(),
    ) {
        let a: Vec<f32> = (0..m * k).map(|i| (i as f32 * 0.77).sin()).collect();
        let b: Vec<f32> = (0..k * n).map(|i| (i as f32 * 0.41).cos()).collect();
        let mut serial = vec![0.0f32; m * n];
        let mut par = vec![0.0f32; m * n];
        gemm_simd_with_threads(ta, tb, m, n, k, &a, &b, &mut serial, 1);
        gemm_simd_with_threads(ta, tb, m, n, k, &a, &b, &mut par, threads);
        prop_assert_eq!(&serial, &par);
    }

    #[test]
    fn quant_simd_matches_scalar_reference_bitwise(
        m in 1..9usize,
        n in 1..40usize,
        k in 1..80usize,
        seed in 0u64..1000,
    ) {
        // Odd k exercises the zero-padded last pair; n % 16 != 0 the
        // ragged panel edge; m > 1 the per-row activation quantization.
        let w: Vec<f32> = (0..k * n)
            .map(|i| ((i as f32 + seed as f32) * 0.73).sin())
            .collect();
        let x: Vec<f32> = (0..m * k)
            .map(|i| ((i as f32 * 1.31) + seed as f32).cos())
            .collect();
        let q = QuantizedMatrix::quantize(&w, k, n);
        let mut fast = vec![0.0f32; m * n];
        let mut reference = vec![0.0f32; m * n];
        q.matmul_into(&x, m, &mut fast);
        q.matmul_reference(&x, m, &mut reference);
        prop_assert_eq!(&fast, &reference);
    }
}
