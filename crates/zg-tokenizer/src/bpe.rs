//! Byte-level BPE: merge training, encoding, and decoding.
//!
//! Training follows the classic algorithm: start from raw bytes, repeatedly
//! merge the most frequent adjacent pair (deterministic tie-break on the
//! pair itself) until the target vocabulary size is reached. Encoding
//! replays merges by rank. Everything round-trips losslessly because the
//! base alphabet is all 256 bytes.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::vocab::{byte_token, first_merge_id, Special};

/// A trained byte-level BPE tokenizer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BpeTokenizer {
    /// Learned merges in rank order: merging `(a, b)` yields token
    /// `first_merge_id() + rank`.
    merges: Vec<(u32, u32)>,
    /// Reverse map for fast encode: pair -> merged id.
    #[serde(skip)]
    merge_map: BTreeMap<(u32, u32), u32>,
}

impl BpeTokenizer {
    /// Tokenizer with no merges: pure byte-level encoding.
    pub fn byte_level() -> Self {
        BpeTokenizer {
            merges: Vec::new(),
            merge_map: BTreeMap::new(),
        }
    }

    /// Train merges from a corpus until the vocabulary reaches `vocab_size`
    /// (specials + 256 bytes + merges), or no pair repeats.
    pub fn train(corpus: &[&str], vocab_size: usize) -> Self {
        let base = first_merge_id() as usize;
        let target_merges = vocab_size.saturating_sub(base);
        let mut seqs: Vec<Vec<u32>> = corpus
            .iter()
            .map(|s| s.bytes().map(byte_token).collect())
            .collect();
        let mut merges = Vec::with_capacity(target_merges);
        for rank in 0..target_merges {
            // Count adjacent pairs across the whole corpus.
            let mut counts: BTreeMap<(u32, u32), usize> = BTreeMap::new();
            for seq in &seqs {
                for w in seq.windows(2) {
                    *counts.entry((w[0], w[1])).or_insert(0) += 1;
                }
            }
            // Most frequent pair; deterministic tie-break on the pair value.
            let best = counts
                .into_iter()
                .filter(|&(_, c)| c >= 2)
                .max_by(|a, b| a.1.cmp(&b.1).then_with(|| b.0.cmp(&a.0)));
            let Some((pair, _)) = best else { break };
            let new_id = (base + rank) as u32;
            merges.push(pair);
            for seq in &mut seqs {
                merge_in_place(seq, pair, new_id);
            }
        }
        let mut tok = BpeTokenizer {
            merges,
            merge_map: BTreeMap::new(),
        };
        tok.rebuild_merge_map();
        tok
    }

    /// Rebuild the pair→id lookup (needed after deserialization).
    pub fn rebuild_merge_map(&mut self) {
        self.merge_map = self
            .merges
            .iter()
            .enumerate()
            .map(|(rank, &pair)| (pair, first_merge_id() + rank as u32))
            .collect();
    }

    /// Total vocabulary size: specials + bytes + merges.
    pub fn vocab_size(&self) -> usize {
        first_merge_id() as usize + self.merges.len()
    }

    /// Number of learned merges.
    pub fn num_merges(&self) -> usize {
        self.merges.len()
    }

    /// Encode text to token ids (no specials added).
    pub fn encode(&self, text: &str) -> Vec<u32> {
        let mut seq: Vec<u32> = text.bytes().map(byte_token).collect();
        if self.merges.is_empty() || seq.len() < 2 {
            return seq;
        }
        // Repeatedly apply the lowest-rank (earliest-learned) applicable
        // merge, mirroring training order.
        loop {
            let mut best: Option<(u32, usize)> = None; // (merged_id, position)
            for (i, w) in seq.windows(2).enumerate() {
                if let Some(&id) = self.merge_map.get(&(w[0], w[1])) {
                    if best.is_none_or(|(bid, _)| id < bid) {
                        best = Some((id, i));
                    }
                }
            }
            let Some((id, _)) = best else { break };
            let pair = self.merges[(id - first_merge_id()) as usize];
            merge_in_place(&mut seq, pair, id);
        }
        seq
    }

    /// Encode and wrap with BOS/EOS.
    pub fn encode_with_specials(&self, text: &str) -> Vec<u32> {
        let mut out = vec![Special::Bos.id()];
        out.extend(self.encode(text));
        out.push(Special::Eos.id());
        out
    }

    /// Byte expansion of a single token id. Specials expand to their text.
    pub fn token_bytes(&self, id: u32) -> Vec<u8> {
        if id < 4 {
            return Special::ALL[id as usize].text().as_bytes().to_vec();
        }
        if id < first_merge_id() {
            return vec![(id - 4) as u8];
        }
        let rank = (id - first_merge_id()) as usize;
        assert!(rank < self.merges.len(), "token id {id} out of vocab");
        let (a, b) = self.merges[rank];
        let mut out = self.token_bytes(a);
        out.extend(self.token_bytes(b));
        out
    }

    /// Decode ids back to text. Special tokens are skipped (except `<unk>`,
    /// which renders as its text so parse failures stay visible).
    pub fn decode(&self, ids: &[u32]) -> String {
        let mut bytes = Vec::new();
        for &id in ids {
            match id {
                x if x == Special::Pad.id() || x == Special::Bos.id() || x == Special::Eos.id() => {
                }
                _ => bytes.extend(self.token_bytes(id)),
            }
        }
        String::from_utf8_lossy(&bytes).into_owned()
    }

    /// Serialize to JSON.
    pub fn to_json(&self) -> String {
        // INVARIANT: BpeTokenizer is a plain data struct (Vec of u32
        // pairs); serialization cannot fail.
        serde_json::to_string(self).expect("tokenizer serializes")
    }

    /// Deserialize from JSON (rebuilds the merge lookup).
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        let mut tok: BpeTokenizer = serde_json::from_str(json)?;
        tok.rebuild_merge_map();
        Ok(tok)
    }
}

/// Replace every adjacent occurrence of `pair` with `new_id`, in place.
fn merge_in_place(seq: &mut Vec<u32>, pair: (u32, u32), new_id: u32) {
    let mut write = 0usize;
    let mut read = 0usize;
    while read < seq.len() {
        if read + 1 < seq.len() && seq[read] == pair.0 && seq[read + 1] == pair.1 {
            seq[write] = new_id;
            read += 2;
        } else {
            seq[write] = seq[read];
            read += 1;
        }
        write += 1;
    }
    seq.truncate(write);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_level_roundtrip() {
        let tok = BpeTokenizer::byte_level();
        let text = "hello, 世界! 0.42";
        assert_eq!(tok.decode(&tok.encode(text)), text);
    }

    #[test]
    fn merge_in_place_basic() {
        let mut seq = vec![1, 2, 1, 2, 3, 1];
        merge_in_place(&mut seq, (1, 2), 9);
        assert_eq!(seq, vec![9, 9, 3, 1]);
    }

    #[test]
    fn merge_in_place_overlapping_left_to_right() {
        let mut seq = vec![1, 1, 1];
        merge_in_place(&mut seq, (1, 1), 9);
        assert_eq!(seq, vec![9, 1]);
    }

    #[test]
    fn training_learns_frequent_pairs() {
        let corpus = ["ababababab", "ababab"]; // "ab" dominates
        let refs: Vec<&str> = corpus.iter().map(|s| &**s).collect();
        let tok = BpeTokenizer::train(&refs, first_merge_id() as usize + 4);
        assert!(tok.num_merges() >= 1);
        // First merge should be ('a','b').
        let encoded = tok.encode("ab");
        assert_eq!(encoded.len(), 1, "'ab' should compress to one token");
    }

    #[test]
    fn trained_roundtrip_lossless() {
        let corpus = vec![
            "Question: what is the sentiment? Answer: good",
            "Question: is this application fraudulent? Answer: No",
            "credit amount 2500, duration 12 months",
        ];
        let refs: Vec<&str> = corpus.iter().map(|s| &**s).collect();
        let tok = BpeTokenizer::train(&refs, 400);
        for text in &corpus {
            assert_eq!(tok.decode(&tok.encode(text)), *text);
        }
        // Unseen text must also round-trip (byte fallback).
        let unseen = "zebra ~~ €42";
        assert_eq!(tok.decode(&tok.encode(unseen)), unseen);
    }

    #[test]
    fn compression_reduces_token_count() {
        let corpus: Vec<String> = (0..50).map(|i| format!("Answer: Yes number {i}")).collect();
        let refs: Vec<&str> = corpus.iter().map(|s| &**s).collect();
        let tok = BpeTokenizer::train(&refs, 500);
        let text = "Answer: Yes number 7";
        assert!(tok.encode(text).len() < text.len());
    }

    #[test]
    fn encode_with_specials_brackets() {
        let tok = BpeTokenizer::byte_level();
        let ids = tok.encode_with_specials("hi");
        assert_eq!(ids[0], Special::Bos.id());
        assert_eq!(*ids.last().unwrap(), Special::Eos.id());
        assert_eq!(tok.decode(&ids), "hi");
    }

    #[test]
    fn json_roundtrip_preserves_encoding() {
        let corpus = ["the quick brown fox", "the lazy dog", "the the the"];
        let refs: Vec<&str> = corpus.iter().map(|s| &**s).collect();
        let tok = BpeTokenizer::train(&refs, 320);
        let json = tok.to_json();
        let back = BpeTokenizer::from_json(&json).unwrap();
        assert_eq!(tok.encode("the quick"), back.encode("the quick"));
        assert_eq!(tok.vocab_size(), back.vocab_size());
    }

    #[test]
    fn vocab_size_accounts_for_merges() {
        let tok = BpeTokenizer::byte_level();
        assert_eq!(tok.vocab_size(), 260);
    }

    #[test]
    fn empty_and_single_byte_inputs() {
        let tok = BpeTokenizer::byte_level();
        assert!(tok.encode("").is_empty());
        assert_eq!(tok.encode("a").len(), 1);
        assert_eq!(tok.decode(&[]), "");
    }
}
