//! # zg-tokenizer
//!
//! Byte-level BPE tokenizer for the ZiGong reproduction. Mistral uses a
//! 32k SentencePiece vocabulary; at miniature scale we train a few hundred
//! byte-level BPE merges over the financial-credit instruction corpus,
//! which preserves the property that matters for the experiments: label
//! words ("Yes", "No", "good", "bad") compress to few, stable tokens that
//! the model can learn to emit.
//!
//! ```
//! use zg_tokenizer::BpeTokenizer;
//! let corpus = ["Answer: Yes", "Answer: No", "Answer: Yes"];
//! let tok = BpeTokenizer::train(&corpus, 300);
//! let ids = tok.encode("Answer: Yes");
//! assert_eq!(tok.decode(&ids), "Answer: Yes");
//! ```

mod bpe;
mod vocab;

pub use bpe::BpeTokenizer;
pub use vocab::{byte_token, first_merge_id, Special, NUM_SPECIALS};
