//! Vocabulary layout: special tokens, the 256 byte tokens, then learned
//! BPE merge tokens, in that order. Ids are stable across save/load.

use serde::{Deserialize, Serialize};

/// Reserved special tokens. Their ids are fixed and precede all byte tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Special {
    /// Padding (id 0) — also the `ignore_index` for loss masking.
    Pad,
    /// Beginning-of-sequence (id 1).
    Bos,
    /// End-of-sequence (id 2).
    Eos,
    /// Unknown/fallback (id 3). Byte-level BPE never produces it during
    /// normal encoding; it exists for robustness of downstream parsers.
    Unk,
}

impl Special {
    /// Token id of this special.
    pub const fn id(self) -> u32 {
        match self {
            Special::Pad => 0,
            Special::Bos => 1,
            Special::Eos => 2,
            Special::Unk => 3,
        }
    }

    /// Surface string form (used in decoded text and template rendering).
    pub const fn text(self) -> &'static str {
        match self {
            Special::Pad => "<pad>",
            Special::Bos => "<s>",
            Special::Eos => "</s>",
            Special::Unk => "<unk>",
        }
    }

    /// All specials in id order.
    pub const ALL: [Special; 4] = [Special::Pad, Special::Bos, Special::Eos, Special::Unk];
}

/// Number of reserved special-token ids.
pub const NUM_SPECIALS: u32 = 4;

/// Id of the token for raw byte `b`.
pub const fn byte_token(b: u8) -> u32 {
    NUM_SPECIALS + b as u32
}

/// First id available for learned merge tokens.
pub const fn first_merge_id() -> u32 {
    NUM_SPECIALS + 256
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn special_ids_fixed() {
        assert_eq!(Special::Pad.id(), 0);
        assert_eq!(Special::Bos.id(), 1);
        assert_eq!(Special::Eos.id(), 2);
        assert_eq!(Special::Unk.id(), 3);
    }

    #[test]
    fn byte_tokens_follow_specials() {
        assert_eq!(byte_token(0), 4);
        assert_eq!(byte_token(255), 259);
        assert_eq!(first_merge_id(), 260);
    }

    #[test]
    fn specials_distinct_text() {
        let texts: Vec<&str> = Special::ALL.iter().map(|s| s.text()).collect();
        let mut dedup = texts.clone();
        dedup.dedup();
        assert_eq!(texts.len(), dedup.len());
    }
}
