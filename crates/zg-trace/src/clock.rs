//! Clock injection: the tracer never decides *how* time is read, it is
//! handed a [`Clock`] closure. Library code stays deterministic (zg-lint
//! rule D2) because the only real-clock source in the whole workspace is
//! [`wall_clock`] below, carried by a reviewed `lint.toml` allow entry.
//! Tests and reproducibility checks inject [`tick_clock`] (a counter) or
//! no clock at all (every timestamp `0.0`, structure still recorded).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// An injected monotonic clock returning seconds since an arbitrary
/// origin. Shared across the tracer's worker streams, so it must be
/// `Send + Sync`; it must never call back into tracing APIs.
pub type Clock = Arc<dyn Fn() -> f64 + Send + Sync>;

/// The workspace's single real-clock source (allowlisted for zg-lint
/// rule D2 in `lint.toml`): seconds elapsed since this call.
///
/// Only measurement entry points (benchmark binaries, the `trace_report`
/// capture mode) should construct one; library code receives it as an
/// opaque [`Clock`] and stays deterministic.
pub fn wall_clock() -> Clock {
    let origin = Instant::now();
    Arc::new(move || origin.elapsed().as_secs_f64())
}

/// A deterministic fake clock: every read returns the next integer
/// "second" (0.0, 1.0, 2.0, ...). Single-threaded use yields a fully
/// reproducible timestamp stream, which is what the byte-identical
/// trace tests run under.
pub fn tick_clock() -> Clock {
    let ticks = AtomicU64::new(0);
    Arc::new(move || ticks.fetch_add(1, Ordering::Relaxed) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_clock_counts_up() {
        let c = tick_clock();
        assert_eq!(c(), 0.0);
        assert_eq!(c(), 1.0);
        assert_eq!(c(), 2.0);
        // Independent clocks restart from zero.
        let d = tick_clock();
        assert_eq!(d(), 0.0);
    }

    #[test]
    fn wall_clock_is_monotonic() {
        let c = wall_clock();
        let a = c();
        let b = c();
        assert!(b >= a);
        assert!(a >= 0.0);
    }
}
