//! Clock injection: the tracer never decides *how* time is read, it is
//! handed a [`Clock`] closure. Library code stays deterministic (zg-lint
//! rule D2) because the only real-clock source in the whole workspace is
//! [`wall_clock`] below, carried by a reviewed `lint.toml` allow entry.
//! Tests and reproducibility checks inject [`tick_clock`] (a counter) or
//! no clock at all (every timestamp `0.0`, structure still recorded).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// An injected monotonic clock returning seconds since an arbitrary
/// origin. Shared across the tracer's worker streams, so it must be
/// `Send + Sync`; it must never call back into tracing APIs.
pub type Clock = Arc<dyn Fn() -> f64 + Send + Sync>;

/// The workspace's single real-clock source (allowlisted for zg-lint
/// rule D2 in `lint.toml`): seconds elapsed since this call.
///
/// Only measurement entry points (benchmark binaries, the `trace_report`
/// capture mode) should construct one; library code receives it as an
/// opaque [`Clock`] and stays deterministic.
pub fn wall_clock() -> Clock {
    let origin = Instant::now();
    Arc::new(move || origin.elapsed().as_secs_f64())
}

/// A deterministic fake clock: every read returns the next integer
/// "second" (0.0, 1.0, 2.0, ...). Single-threaded use yields a fully
/// reproducible timestamp stream, which is what the byte-identical
/// trace tests run under.
pub fn tick_clock() -> Clock {
    let ticks = AtomicU64::new(0);
    Arc::new(move || ticks.fetch_add(1, Ordering::Relaxed) as f64)
}

/// A deterministic clock that only moves when the owner advances it —
/// the substrate for discrete-event simulation (zg-serve's scheduler
/// tests and the `serve_load` determinism audit run on one).
///
/// Unlike [`tick_clock`], *reading* a `ManualClock` never changes it:
/// every reader observes exactly the time the simulation harness last
/// set, so a simulated server's timestamps are a pure function of the
/// harness's advance schedule, not of how many instrumentation points
/// happened to read the clock.
///
/// Cloning shares the underlying time cell (a clone is another handle
/// onto the same simulated timeline).
#[derive(Clone)]
pub struct ManualClock {
    /// Current simulated time, stored as `f64` bits.
    now_bits: Arc<AtomicU64>,
}

impl ManualClock {
    /// A manual clock starting at `t = 0.0`.
    pub fn new() -> ManualClock {
        ManualClock {
            now_bits: Arc::new(AtomicU64::new(0.0f64.to_bits())),
        }
    }

    /// Current simulated time in seconds.
    pub fn now(&self) -> f64 {
        f64::from_bits(self.now_bits.load(Ordering::SeqCst))
    }

    /// Advance simulated time by `dt` seconds (must be non-negative).
    pub fn advance(&self, dt: f64) {
        assert!(dt >= 0.0, "simulated time cannot run backwards");
        self.set(self.now() + dt);
    }

    /// Jump simulated time to `t` (must not move backwards).
    pub fn set(&self, t: f64) {
        assert!(
            t >= self.now(),
            "simulated time cannot run backwards: {} -> {t}",
            self.now()
        );
        self.now_bits.store(t.to_bits(), Ordering::SeqCst);
    }

    /// This timeline as an injectable [`Clock`].
    pub fn clock(&self) -> Clock {
        let cell = self.clone();
        Arc::new(move || cell.now())
    }
}

impl Default for ManualClock {
    fn default() -> ManualClock {
        ManualClock::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_clock_counts_up() {
        let c = tick_clock();
        assert_eq!(c(), 0.0);
        assert_eq!(c(), 1.0);
        assert_eq!(c(), 2.0);
        // Independent clocks restart from zero.
        let d = tick_clock();
        assert_eq!(d(), 0.0);
    }

    #[test]
    fn manual_clock_moves_only_when_advanced() {
        let m = ManualClock::new();
        let c = m.clock();
        assert_eq!(c(), 0.0);
        assert_eq!(c(), 0.0, "reads never advance a manual clock");
        m.advance(1.5);
        assert_eq!(c(), 1.5);
        m.set(4.0);
        assert_eq!(c(), 4.0);
        // Clones share the timeline.
        let other = m.clone();
        other.advance(0.5);
        assert_eq!(m.now(), 4.5);
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn manual_clock_rejects_backwards_jumps() {
        let m = ManualClock::new();
        m.set(2.0);
        m.set(1.0);
    }

    #[test]
    fn wall_clock_is_monotonic() {
        let c = wall_clock();
        let a = c();
        let b = c();
        assert!(b >= a);
        assert!(a >= 0.0);
    }
}
