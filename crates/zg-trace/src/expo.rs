//! Byte-deterministic Prometheus-style text exposition. The builder
//! appends samples in exactly the order the caller drives, `# TYPE`
//! headers are emitted once per metric name at first use, and all values
//! go through the crate's shortest-roundtrip `f64` formatter — so two
//! snapshots built from identical metric state render identical bytes,
//! which is what the zg-serve ops-plane determinism tests pin.

use std::fmt::Write as _;

use crate::hist::Hist;
use crate::jsonl;

/// Builder for a Prometheus-style text snapshot.
#[derive(Debug, Default)]
pub struct Expo {
    out: String,
    last_type: Option<String>,
}

/// Escape a label *value* per the Prometheus text format (backslash,
/// double quote, and newline must be escaped; nothing else is).
fn esc_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Format a sample value: finite values use the shortest-roundtrip
/// writer, non-finite ones the exposition spellings `+Inf`/`-Inf`/`NaN`.
fn val(v: f64) -> String {
    if v.is_finite() {
        jsonl::num(v)
    } else if v.is_nan() {
        "NaN".to_string()
    } else if v > 0.0 {
        "+Inf".to_string()
    } else {
        "-Inf".to_string()
    }
}

impl Expo {
    /// Empty snapshot.
    pub fn new() -> Expo {
        Expo::default()
    }

    fn type_line(&mut self, name: &str, kind: &str) {
        if self.last_type.as_deref() != Some(name) {
            // INVARIANT: write! to a String cannot fail.
            writeln!(self.out, "# TYPE {name} {kind}").expect("write to String");
            self.last_type = Some(name.to_string());
        }
    }

    fn sample(&mut self, name: &str, suffix: &str, labels: &[(&str, &str)], value: f64) {
        self.out.push_str(name);
        self.out.push_str(suffix);
        if !labels.is_empty() {
            self.out.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    self.out.push(',');
                }
                // INVARIANT: write! to a String cannot fail.
                write!(self.out, "{k}=\"{}\"", esc_label(v)).expect("write to String");
            }
            self.out.push('}');
        }
        self.out.push(' ');
        self.out.push_str(&val(value));
        self.out.push('\n');
    }

    /// Append a counter sample. The `# TYPE` header is emitted once per
    /// consecutive run of samples sharing `name`.
    pub fn counter(&mut self, name: &str, labels: &[(&str, &str)], value: f64) -> &mut Expo {
        self.type_line(name, "counter");
        self.sample(name, "", labels, value);
        self
    }

    /// Append a gauge sample.
    pub fn gauge(&mut self, name: &str, labels: &[(&str, &str)], value: f64) -> &mut Expo {
        self.type_line(name, "gauge");
        self.sample(name, "", labels, value);
        self
    }

    /// Append a full histogram: cumulative `_bucket{le=...}` samples for
    /// every edge plus `le="+Inf"`, then `_sum` and `_count`. Extra
    /// `labels` are rendered before the `le` label on each bucket.
    pub fn hist(&mut self, name: &str, labels: &[(&str, &str)], h: &Hist) -> &mut Expo {
        self.type_line(name, "histogram");
        let mut cum = 0u64;
        for (i, &c) in h.counts.iter().enumerate() {
            cum += c;
            let le = match h.edges.get(i) {
                Some(e) => jsonl::num(*e),
                None => "+Inf".to_string(),
            };
            let mut bl: Vec<(&str, &str)> = labels.to_vec();
            bl.push(("le", &le));
            self.sample(name, "_bucket", &bl, cum as f64);
        }
        let mut sl: Vec<(&str, &str)> = labels.to_vec();
        self.sample(name, "_sum", &sl, h.sum);
        sl.clear();
        sl.extend_from_slice(labels);
        self.sample(name, "_count", &sl, h.n as f64);
        self
    }

    /// The rendered snapshot so far.
    pub fn as_str(&self) -> &str {
        &self.out
    }

    /// Consume the builder, returning the rendered snapshot.
    pub fn finish(self) -> String {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_header_emitted_once_per_name_run() {
        let mut e = Expo::new();
        e.counter("reqs_total", &[("outcome", "ok")], 3.0);
        e.counter("reqs_total", &[("outcome", "err")], 1.0);
        e.gauge("depth", &[], 7.0);
        assert_eq!(
            e.finish(),
            "# TYPE reqs_total counter\n\
             reqs_total{outcome=\"ok\"} 3\n\
             reqs_total{outcome=\"err\"} 1\n\
             # TYPE depth gauge\n\
             depth 7\n"
        );
    }

    #[test]
    fn hist_renders_cumulative_buckets_sum_count() {
        let mut h = Hist::new(&[1.0, 10.0]);
        h.record(0.5);
        h.record(5.0);
        h.record(50.0);
        let mut e = Expo::new();
        e.hist("lat_seconds", &[("stage", "queue")], &h);
        assert_eq!(
            e.finish(),
            "# TYPE lat_seconds histogram\n\
             lat_seconds_bucket{stage=\"queue\",le=\"1\"} 1\n\
             lat_seconds_bucket{stage=\"queue\",le=\"10\"} 2\n\
             lat_seconds_bucket{stage=\"queue\",le=\"+Inf\"} 3\n\
             lat_seconds_sum{stage=\"queue\"} 55.5\n\
             lat_seconds_count{stage=\"queue\"} 3\n"
        );
    }

    #[test]
    fn label_values_are_escaped_and_nonfinite_values_spelled() {
        let mut e = Expo::new();
        e.gauge("g", &[("k", "a\"b\\c\nd")], f64::INFINITY);
        e.gauge("g", &[], f64::NEG_INFINITY);
        e.gauge("g", &[], f64::NAN);
        assert_eq!(
            e.finish(),
            "# TYPE g gauge\n\
             g{k=\"a\\\"b\\\\c\\nd\"} +Inf\n\
             g -Inf\n\
             g NaN\n"
        );
    }

    #[test]
    fn identical_inputs_render_identical_bytes() {
        let build = || {
            let mut h = Hist::new(&[0.001, 0.01]);
            h.record(0.004);
            let mut e = Expo::new();
            e.counter("c", &[("a", "x")], 2.0);
            e.hist("h", &[], &h);
            e.finish()
        };
        assert_eq!(build(), build());
    }
}
