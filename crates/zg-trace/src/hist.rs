//! Fixed-bucket histograms: a value is counted into the first bucket
//! whose upper edge is `>= value`, with one implicit overflow bucket at
//! the end. Bucket edges are fixed at construction, so merging two
//! histograms of the same metric is element-wise count addition —
//! deterministic in merge order, no rebinning, no quantile sketches.

/// Default edges: powers of 4 from 1 to 4^14 (~2.7e8). Wide enough for
/// token counts, micro-batch sizes, and `m·n·k` GEMM volumes alike while
/// keeping the bucket array small and fixed.
pub const DEFAULT_HIST_EDGES: &[f64] = &[
    1.0,
    4.0,
    16.0,
    64.0,
    256.0,
    1024.0,
    4096.0,
    16384.0,
    65536.0,
    262144.0,
    1048576.0,
    4194304.0,
    16777216.0,
    67108864.0,
    268435456.0,
];

/// Upper edges for *latency* histograms: powers of two from 1 µs to
/// 2^24 µs (~16.8 s). Log-scaled like [`DEFAULT_HIST_EDGES`] but shifted
/// into the sub-second range queue waits and request latencies live in;
/// fixed edges keep shard merging element-wise and deterministic.
pub fn latency_edges() -> Vec<f64> {
    (0..25).map(|k| 1e-6 * (1u64 << k) as f64).collect()
}

/// A fixed-bucket histogram with running sum and count.
#[derive(Debug, Clone, PartialEq)]
pub struct Hist {
    /// Inclusive upper edges, ascending. Values above the last edge land
    /// in the implicit overflow bucket.
    pub edges: Vec<f64>,
    /// Per-bucket counts; `counts.len() == edges.len() + 1` (overflow last).
    pub counts: Vec<u64>,
    /// Sum of observed values.
    pub sum: f64,
    /// Number of observations.
    pub n: u64,
}

impl Hist {
    /// Empty histogram over `edges` (must be non-empty and ascending).
    pub fn new(edges: &[f64]) -> Hist {
        assert!(!edges.is_empty(), "histogram needs at least one edge");
        assert!(
            // INVARIANT: windows(2) yields exactly-two-element slices.
            edges.windows(2).all(|w| w[0] < w[1]),
            "histogram edges must strictly ascend"
        );
        Hist {
            edges: edges.to_vec(),
            counts: vec![0; edges.len() + 1],
            sum: 0.0,
            n: 0,
        }
    }

    /// Empty histogram over [`DEFAULT_HIST_EDGES`].
    pub fn default_edges() -> Hist {
        Hist::new(DEFAULT_HIST_EDGES)
    }

    /// Empty latency histogram over [`latency_edges`].
    pub fn latency() -> Hist {
        Hist::new(&latency_edges())
    }

    /// Count `v` into its bucket.
    pub fn record(&mut self, v: f64) {
        let idx = self
            .edges
            .iter()
            .position(|&e| v <= e)
            .unwrap_or(self.edges.len());
        // INVARIANT: counts has edges.len() + 1 buckets, so idx is in bounds.
        self.counts[idx] += 1;
        self.sum += v;
        self.n += 1;
    }

    /// Add another histogram of the same metric into this one.
    /// Panics when the bucket layouts differ (they are fixed per name).
    pub fn merge(&mut self, other: &Hist) {
        assert_eq!(
            self.edges, other.edges,
            "cannot merge histograms with different bucket edges"
        );
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.sum += other.sum;
        self.n += other.n;
    }

    /// Nearest-rank quantile estimate from the bucket counts: the upper
    /// edge of the bucket holding the rank-⌈q·n⌉ observation (`q`
    /// clamped to `[0, 1]`). Returns `0.0` when empty and
    /// `f64::INFINITY` when the rank lands in the overflow bucket. A
    /// pure function of the counts, so merged shards yield the same
    /// estimate regardless of merge order.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.n as f64).ceil() as u64).clamp(1, self.n);
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= target {
                return self.edges.get(i).copied().unwrap_or(f64::INFINITY);
            }
        }
        // INVARIANT: the counts sum to n >= target, so the loop always
        // returns; this arm is unreachable.
        f64::INFINITY
    }

    /// Mean of observed values (`0.0` when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum / self.n as f64
        }
    }

    /// `(label, count)` for every non-empty bucket, in edge order; the
    /// overflow bucket is labelled `>last_edge`.
    pub fn nonzero_buckets(&self) -> Vec<(String, u64)> {
        let mut out = Vec::new();
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let label = if i < self.edges.len() {
                format!("<={}", self.edges[i])
            } else {
                // INVARIANT: `new` requires at least one edge.
                format!(">{}", self.edges.last().expect("non-empty edges"))
            };
            out.push((label, c));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_into_first_covering_bucket() {
        let mut h = Hist::new(&[1.0, 10.0, 100.0]);
        h.record(0.5); // <=1
        h.record(1.0); // <=1 (inclusive)
        h.record(7.0); // <=10
        h.record(100.0); // <=100
        h.record(1e6); // overflow
        assert_eq!(h.counts, vec![2, 1, 1, 1]);
        assert_eq!(h.n, 5);
        assert!((h.sum - (0.5 + 1.0 + 7.0 + 100.0 + 1e6)).abs() < 1e-9);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Hist::new(&[1.0, 10.0]);
        a.record(0.5);
        let mut b = Hist::new(&[1.0, 10.0]);
        b.record(5.0);
        b.record(50.0);
        a.merge(&b);
        assert_eq!(a.counts, vec![1, 1, 1]);
        assert_eq!(a.n, 3);
    }

    #[test]
    #[should_panic(expected = "different bucket edges")]
    fn merge_rejects_mismatched_edges() {
        let mut a = Hist::new(&[1.0]);
        a.merge(&Hist::new(&[2.0]));
    }

    #[test]
    fn nonzero_buckets_label_overflow() {
        let mut h = Hist::new(&[1.0, 10.0]);
        h.record(99.0);
        assert_eq!(h.nonzero_buckets(), vec![(">10".to_string(), 1)]);
    }

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(Hist::default_edges().mean(), 0.0);
    }

    #[test]
    fn latency_edges_are_log_scaled_microseconds_to_seconds() {
        let e = latency_edges();
        assert_eq!(e.len(), 25);
        assert_eq!(e[0], 1e-6);
        assert!(e.windows(2).all(|w| w[1] == 2.0 * w[0]));
        assert!(e[24] > 16.0 && e[24] < 17.0);
        // Must satisfy Hist::new's strictly-ascending requirement.
        let _ = Hist::latency();
    }

    #[test]
    fn quantile_is_nearest_rank_bucket_edge() {
        let mut h = Hist::new(&[1.0, 10.0, 100.0]);
        for v in [0.5, 2.0, 3.0, 20.0] {
            h.record(v);
        }
        // Ranks: q=0.25 -> rank 1 -> bucket <=1; q=0.5 -> rank 2 -> <=10;
        // q=0.99 -> rank 4 -> <=100.
        assert_eq!(h.quantile(0.25), 1.0);
        assert_eq!(h.quantile(0.5), 10.0);
        assert_eq!(h.quantile(0.99), 100.0);
        assert_eq!(h.quantile(0.0), 1.0, "rank clamps to 1");
    }

    #[test]
    fn quantile_handles_empty_and_overflow() {
        let mut h = Hist::new(&[1.0]);
        assert_eq!(h.quantile(0.5), 0.0, "empty histogram");
        h.record(99.0);
        assert_eq!(h.quantile(0.5), f64::INFINITY, "overflow bucket");
    }

    #[test]
    fn quantile_is_merge_order_independent() {
        let mut a = Hist::new(&[1.0, 10.0]);
        a.record(0.5);
        a.record(5.0);
        let mut b = Hist::new(&[1.0, 10.0]);
        b.record(7.0);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.quantile(0.5), ba.quantile(0.5));
        assert_eq!(ab.quantile(0.99), ba.quantile(0.99));
    }
}
