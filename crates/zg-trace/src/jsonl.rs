//! Minimal hand-rolled JSON: an escaping writer and a recursive-descent
//! parser for the subset this crate emits (objects, arrays, strings,
//! finite numbers, booleans, null). Kept in-crate so the trace format is
//! dependency-free and its byte output is fully under our control —
//! `f64` values are written with Rust's shortest-roundtrip formatting,
//! which is deterministic across runs and platforms.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Escape `s` as the body of a JSON string literal (no surrounding quotes).
pub fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                // INVARIANT: write! to a String cannot fail.
                write!(out, "\\u{:04x}", c as u32).expect("write to String");
            }
            c => out.push(c),
        }
    }
    out
}

/// Format an `f64` for JSON output: shortest roundtrip representation,
/// with non-finite values clamped to `0` (the tracer never records them,
/// but the writer must still emit valid JSON).
pub fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, held as `f64`.
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object; key order preserved is not needed, lookups go by name.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// Value as f64.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// Value as u64 (must be a non-negative integral number).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 => Some(*v as u64),
            _ => None,
        }
    }

    /// Value as i64 (must be an integral number).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(v) if v.fract() == 0.0 => Some(*v as i64),
            _ => None,
        }
    }

    /// Value as &str.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Value as array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parse one JSON document; trailing non-whitespace is an error.
pub fn parse(s: &str) -> Result<Json, String> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => parse_str(b, pos).map(Json::Str),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_num(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos])
        .map_err(|_| format!("invalid utf8 in number at byte {start}"))?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number `{text}` at byte {start}"))
}

fn parse_str(b: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| "invalid \\u escape".to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("invalid \\u escape `{hex}`"))?;
                        // The writer never emits surrogate pairs (it escapes
                        // only control characters), so a lone code point is
                        // the full character.
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| format!("invalid code point {code:#x}"))?,
                        );
                        *pos += 4;
                    }
                    _ => return Err(format!("invalid escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one full UTF-8 character.
                let rest = std::str::from_utf8(&b[*pos..])
                    .map_err(|_| format!("invalid utf8 at byte {pos}", pos = *pos))?;
                // INVARIANT: rest is non-empty (guarded by the get above).
                let c = rest.chars().next().expect("non-empty remainder");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    debug_assert_eq!(b[*pos], b'{');
    *pos += 1;
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        let key = parse_str(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected `:` at byte {pos}", pos = *pos));
        }
        *pos += 1;
        let val = parse_value(b, pos)?;
        map.insert(key, val);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    debug_assert_eq!(b[*pos], b'[');
    *pos += 1;
    let mut out = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(out));
    }
    loop {
        out.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(out));
            }
            _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_roundtrip() {
        let raw = "a\"b\\c\nd\te\u{1}f→";
        let wrapped = format!("\"{}\"", esc(raw));
        let parsed = parse(&wrapped).expect("parse");
        assert_eq!(parsed, Json::Str(raw.to_string()));
    }

    #[test]
    fn parses_nested_document() {
        let doc = r#"{"a": [1, -2.5, 3e2], "b": {"c": true, "d": null}, "e": "x"}"#;
        let v = parse(doc).expect("parse");
        assert_eq!(
            v.get("a").and_then(|a| a.as_arr()).map(<[Json]>::len),
            Some(3)
        );
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_f64(),
            Some(300.0)
        );
        assert_eq!(v.get("b").and_then(|b| b.get("c")), Some(&Json::Bool(true)));
        assert_eq!(v.get("e").and_then(Json::as_str), Some("x"));
    }

    #[test]
    fn number_formatting_roundtrips() {
        for v in [0.0, 1.5, -3.25, 1e-9, 123456789.0, 0.1 + 0.2] {
            let text = num(v);
            let back = parse(&text).expect("parse").as_f64().expect("num");
            assert_eq!(back.to_bits(), v.to_bits(), "roundtrip of {v}");
        }
        assert_eq!(num(f64::NAN), "0");
    }

    #[test]
    fn rejects_trailing_garbage_and_truncation() {
        assert!(parse("{} x").is_err());
        assert!(parse("{\"a\":").is_err());
        assert!(parse("\"abc").is_err());
        assert!(parse("[1,]").is_err());
    }

    #[test]
    fn integral_accessors() {
        let v = parse("{\"a\": 7, \"b\": -3, \"c\": 1.5}").expect("parse");
        assert_eq!(v.get("a").unwrap().as_u64(), Some(7));
        assert_eq!(v.get("b").unwrap().as_i64(), Some(-3));
        assert_eq!(v.get("b").unwrap().as_u64(), None);
        assert_eq!(v.get("c").unwrap().as_u64(), None);
    }
}
