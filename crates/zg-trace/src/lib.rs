//! # zg-trace — deterministic workspace-wide tracing and metrics
//!
//! A dependency-free observability subsystem for the ZiGong
//! reproduction. Three design rules keep it compatible with the
//! workspace's determinism discipline:
//!
//! 1. **Injectable clock.** The tracer never reads time itself; it is
//!    handed a [`Clock`] closure. The only real-clock constructor in the
//!    workspace is [`wall_clock`] (allowlisted for zg-lint rule D2);
//!    tests inject [`tick_clock`] or no clock at all, which makes trace
//!    bytes reproducible run-over-run.
//! 2. **Deterministic collection.** Stream ids are allocated on the
//!    spawning thread in program order ([`Tracer::handle`],
//!    [`fork_stream`]), each stream buffers locally, and [`Tracer::finish`]
//!    merges by id — so the merged trace does not depend on OS
//!    scheduling. All metric maps are `BTreeMap` (rule D1).
//! 3. **Free when off.** Instrumentation goes through ambient free
//!    functions ([`span`], [`counter_add`], ...) that check a
//!    thread-local and no-op when no stream is installed; parity tests
//!    elsewhere in the workspace prove outputs are bit-identical with
//!    tracing on vs off.
//!
//! ## Capturing a trace
//!
//! ```
//! use zg_trace::{tick_clock, Tracer, span, counter_add, render_report, Trace};
//!
//! let tracer = Tracer::with_clock(tick_clock());
//! {
//!     let _stream = tracer.install("main");
//!     let _phase = span("demo.phase");
//!     counter_add("demo.items", 3.0);
//! }
//! let trace = tracer.finish();
//! let jsonl = trace.to_jsonl();                       // canonical bytes
//! assert_eq!(Trace::from_jsonl(&jsonl).unwrap(), trace);
//! let _chrome = trace.to_chrome_json();               // chrome://tracing
//! assert!(render_report(&trace).contains("demo.phase"));
//! ```
//!
//! Worker pools allocate one stream per worker up front (deterministic
//! ids), install on the worker thread, and the guards submit on drop:
//!
//! ```
//! use zg_trace::{Tracer, fork_stream, span};
//!
//! let tracer = Tracer::new();
//! let _main = tracer.install("main");
//! let handles: Vec<_> = (0..4)
//!     .map(|i| fork_stream(&format!("w{i}")).unwrap())
//!     .collect();
//! std::thread::scope(|scope| {
//!     for h in handles {
//!         scope.spawn(move || {
//!             let _stream = h.install();
//!             let _s = span("work");
//!         });
//!     }
//! });
//! ```

mod clock;
mod expo;
mod hist;
pub mod jsonl;
mod report;
mod trace;
mod tracer;
mod window;

pub use clock::{tick_clock, wall_clock, Clock, ManualClock};
pub use expo::Expo;
pub use hist::{latency_edges, Hist, DEFAULT_HIST_EDGES};
pub use report::render_report;
pub use trace::{EventKind, SpanTotal, Trace, TraceEvent, TraceStream};
pub use tracer::{
    counter_add, enabled, fork_stream, gauge_set, hist_record, span, span_arg, totals, Span,
    StreamGuard, StreamHandle, Totals, Tracer,
};
pub use window::{window_of, WindowedCounter, WindowedGauge, WindowedHist};
