//! Plain-text trace report: a self-time span tree (aggregated by call
//! path across all streams), flat per-span totals, and counter / gauge /
//! histogram summaries. Output is fully deterministic — BTreeMap
//! ordering everywhere and fixed-precision formatting — so reports can
//! be diffed between runs.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::trace::{EventKind, Trace};

#[derive(Default)]
struct Node {
    count: u64,
    total_s: f64,
    children: BTreeMap<String, Node>,
}

impl Node {
    fn child_total(&self) -> f64 {
        self.children.values().map(|c| c.total_s).sum()
    }
}

fn build_tree(trace: &Trace) -> Node {
    let mut root = Node::default();
    for stream in &trace.streams {
        let mut path: Vec<(&str, f64)> = Vec::new();
        for ev in &stream.events {
            match &ev.kind {
                EventKind::Begin { name, .. } => path.push((name, ev.t)),
                EventKind::End => {
                    if let Some((leaf, t0)) = path.pop() {
                        // Walk down the still-open path, then charge the
                        // closed frame as its leaf child.
                        let mut node = &mut root;
                        for (name, _) in &path {
                            node = node.children.entry((*name).to_string()).or_default();
                        }
                        let leaf_node = node.children.entry(leaf.to_string()).or_default();
                        leaf_node.count += 1;
                        leaf_node.total_s += ev.t - t0;
                    }
                }
            }
        }
    }
    root
}

fn render_node(out: &mut String, name: &str, node: &Node, depth: usize) {
    let self_s = (node.total_s - node.child_total()).max(0.0);
    let indent = "  ".repeat(depth);
    let _ = writeln!(
        out,
        "{:>12.6} {:>12.6} {:>8}  {indent}{name}",
        node.total_s, self_s, node.count
    );
    for (child_name, child) in &node.children {
        render_node(out, child_name, child, depth + 1);
    }
}

/// Render the full plain-text report for `trace`.
pub fn render_report(trace: &Trace) -> String {
    let mut out = String::new();

    let root = build_tree(trace);
    out.push_str("== spans (self-time tree) ==\n");
    let _ = writeln!(
        out,
        "{:>12} {:>12} {:>8}  span",
        "total_s", "self_s", "count"
    );
    if root.children.is_empty() {
        out.push_str("(no completed spans)\n");
    } else {
        for (name, node) in &root.children {
            render_node(&mut out, name, node, 0);
        }
    }

    out.push_str("\n== span totals (flat) ==\n");
    let totals = trace.span_totals();
    if totals.is_empty() {
        out.push_str("(none)\n");
    } else {
        let _ = writeln!(out, "{:>12} {:>8}  span", "total_s", "count");
        for (name, t) in &totals {
            let _ = writeln!(out, "{:>12.6} {:>8}  {name}", t.total_s, t.count);
        }
    }

    out.push_str("\n== counters ==\n");
    let counters = trace.counters();
    if counters.is_empty() {
        out.push_str("(none)\n");
    } else {
        for (name, v) in &counters {
            let _ = writeln!(out, "{v:>14}  {name}");
        }
    }

    out.push_str("\n== gauges (max across streams) ==\n");
    let gauges = trace.gauges();
    if gauges.is_empty() {
        out.push_str("(none)\n");
    } else {
        for (name, v) in &gauges {
            let _ = writeln!(out, "{v:>14}  {name}");
        }
    }

    out.push_str("\n== histograms ==\n");
    let hists = trace.hists();
    if hists.is_empty() {
        out.push_str("(none)\n");
    } else {
        for (name, h) in &hists {
            let buckets: Vec<String> = h
                .nonzero_buckets()
                .into_iter()
                .map(|(label, c)| format!("{label}:{c}"))
                .collect();
            let _ = writeln!(
                out,
                "{name}: n={} mean={:.3} [{}]",
                h.n,
                h.mean(),
                buckets.join(" ")
            );
        }
    }

    out.push_str("\n== streams ==\n");
    for s in &trace.streams {
        let _ = writeln!(
            out,
            "{:>6}  {:<16} {:>6} events",
            s.id,
            s.label,
            s.events.len()
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::tick_clock;
    use crate::tracer::{counter_add, gauge_set, hist_record, span, Tracer};

    fn sample_trace() -> Trace {
        let tracer = Tracer::with_clock(tick_clock());
        {
            let _g = tracer.install("main");
            let _root = span("run");
            for _ in 0..2 {
                let _s = span("step");
                counter_add("items", 3.0);
                hist_record("sizes", 40.0);
            }
            gauge_set("peak", 11.0);
        }
        tracer.finish()
    }

    #[test]
    fn report_contains_tree_and_metric_sections() {
        let report = render_report(&sample_trace());
        assert!(report.contains("== spans (self-time tree) =="));
        assert!(report.contains("run"));
        assert!(
            report.contains("  step"),
            "step nested under run:\n{report}"
        );
        assert!(report.contains("== counters =="));
        assert!(report.contains("items"));
        assert!(report.contains("peak"));
        assert!(report.contains("sizes: n=2"));
        assert!(report.contains("main"));
    }

    #[test]
    fn self_time_subtracts_children() {
        let trace = sample_trace();
        let report = render_report(&trace);
        // tick clock: run spans ticks 0..5 (total 5), the two steps take
        // 1 tick each, so run's self time is 5 - 2 = 3.
        let run_line = report
            .lines()
            .find(|l| l.trim_end().ends_with("  run") || l.trim_end().ends_with(" run"))
            .expect("run line");
        assert!(run_line.contains("5.000000"), "total: {run_line}");
        assert!(run_line.contains("3.000000"), "self: {run_line}");
    }

    #[test]
    fn report_of_empty_trace_is_stable() {
        let report = render_report(&Trace::default());
        assert!(report.contains("(no completed spans)"));
        assert!(report.contains("(none)"));
    }

    #[test]
    fn report_is_deterministic() {
        let a = render_report(&sample_trace());
        let b = render_report(&sample_trace());
        assert_eq!(a, b);
    }
}
