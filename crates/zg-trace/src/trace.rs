//! The owned, serializable form of a finished trace, with two exports:
//! a line-oriented JSONL event stream (the canonical byte-reproducible
//! format, parseable back with [`Trace::from_jsonl`]) and a Chrome
//! `trace_event` JSON file loadable in `chrome://tracing` / Perfetto.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::hist::Hist;
use crate::jsonl::{esc, num, parse, Json};

/// What a [`TraceEvent`] marks.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// Span open, with its name and optional integer argument.
    Begin {
        /// Span name.
        name: String,
        /// Optional integer argument attached at the callsite.
        arg: Option<i64>,
    },
    /// Close of the most recently opened span on the same stream.
    End,
}

/// One begin/end event at time `t` (seconds on the injected clock).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Begin or end.
    pub kind: EventKind,
    /// Timestamp in clock seconds (`0.0` throughout when no clock).
    pub t: f64,
}

/// One stream: the event log plus aggregated metrics of a single
/// installed `StreamGuard` (usually one worker thread or scope).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStream {
    /// Deterministically allocated stream id (allocation order).
    pub id: u64,
    /// Human label, e.g. `"main"` or `"chunk3"`.
    pub label: String,
    /// Begin/end events in recording order.
    pub events: Vec<TraceEvent>,
    /// Summed counters.
    pub counters: BTreeMap<String, f64>,
    /// Last-set gauges.
    pub gauges: BTreeMap<String, f64>,
    /// Fixed-bucket histograms.
    pub hists: BTreeMap<String, Hist>,
}

/// Aggregated time/count for one span name or path.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SpanTotal {
    /// Completed spans.
    pub count: u64,
    /// Sum of end−begin over completed spans, in clock seconds.
    pub total_s: f64,
}

impl TraceStream {
    /// Completed-span totals for this stream, keyed by span name.
    /// Unclosed begins are ignored.
    pub fn span_totals(&self) -> BTreeMap<String, SpanTotal> {
        let mut out: BTreeMap<String, SpanTotal> = BTreeMap::new();
        let mut stack: Vec<(&str, f64)> = Vec::new();
        for ev in &self.events {
            match &ev.kind {
                EventKind::Begin { name, .. } => stack.push((name, ev.t)),
                EventKind::End => {
                    if let Some((name, t0)) = stack.pop() {
                        let e = out.entry(name.to_string()).or_default();
                        e.count += 1;
                        e.total_s += ev.t - t0;
                    }
                }
            }
        }
        out
    }
}

/// A finished trace: streams sorted by id.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    /// All submitted streams, ascending by id.
    pub streams: Vec<TraceStream>,
}

impl Trace {
    /// Completed-span totals across all streams, keyed by span name.
    pub fn span_totals(&self) -> BTreeMap<String, SpanTotal> {
        let mut out: BTreeMap<String, SpanTotal> = BTreeMap::new();
        for s in &self.streams {
            for (name, t) in s.span_totals() {
                let e = out.entry(name).or_default();
                e.count += t.count;
                e.total_s += t.total_s;
            }
        }
        out
    }

    /// Counters summed across streams.
    pub fn counters(&self) -> BTreeMap<String, f64> {
        let mut out = BTreeMap::new();
        for s in &self.streams {
            for (k, v) in &s.counters {
                *out.entry(k.clone()).or_insert(0.0) += v;
            }
        }
        out
    }

    /// Gauges merged across streams by **maximum** (a gauge is a level,
    /// so the peak across workers is the conservative summary).
    pub fn gauges(&self) -> BTreeMap<String, f64> {
        let mut out: BTreeMap<String, f64> = BTreeMap::new();
        for s in &self.streams {
            for (k, v) in &s.gauges {
                let e = out.entry(k.clone()).or_insert(f64::NEG_INFINITY);
                if *v > *e {
                    *e = *v;
                }
            }
        }
        out
    }

    /// Histograms merged across streams (edges are fixed per name, so
    /// the merge is element-wise count addition).
    pub fn hists(&self) -> BTreeMap<String, Hist> {
        let mut out: BTreeMap<String, Hist> = BTreeMap::new();
        for s in &self.streams {
            for (k, h) in &s.hists {
                match out.get_mut(k) {
                    Some(acc) => acc.merge(h),
                    None => {
                        out.insert(k.clone(), h.clone());
                    }
                }
            }
        }
        out
    }

    /// Serialize to the canonical JSONL form: a header line, then per
    /// stream (ascending id) a `stream` line, its events, and its
    /// metrics in BTreeMap (name) order. Every piece of the format is
    /// deterministic, so identical traces serialize to identical bytes.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{{\"kind\":\"trace\",\"version\":1,\"streams\":{}}}",
            self.streams.len()
        );
        for s in &self.streams {
            let _ = writeln!(
                out,
                "{{\"kind\":\"stream\",\"id\":{},\"label\":\"{}\"}}",
                s.id,
                esc(&s.label)
            );
            for ev in &s.events {
                match &ev.kind {
                    EventKind::Begin { name, arg } => {
                        let _ = write!(
                            out,
                            "{{\"kind\":\"b\",\"id\":{},\"name\":\"{}\",\"t\":{}",
                            s.id,
                            esc(name),
                            num(ev.t)
                        );
                        if let Some(a) = arg {
                            let _ = write!(out, ",\"arg\":{a}");
                        }
                        out.push_str("}\n");
                    }
                    EventKind::End => {
                        let _ = writeln!(
                            out,
                            "{{\"kind\":\"e\",\"id\":{},\"t\":{}}}",
                            s.id,
                            num(ev.t)
                        );
                    }
                }
            }
            for (name, v) in &s.counters {
                let _ = writeln!(
                    out,
                    "{{\"kind\":\"counter\",\"id\":{},\"name\":\"{}\",\"value\":{}}}",
                    s.id,
                    esc(name),
                    num(*v)
                );
            }
            for (name, v) in &s.gauges {
                let _ = writeln!(
                    out,
                    "{{\"kind\":\"gauge\",\"id\":{},\"name\":\"{}\",\"value\":{}}}",
                    s.id,
                    esc(name),
                    num(*v)
                );
            }
            for (name, h) in &s.hists {
                let edges: Vec<String> = h.edges.iter().map(|e| num(*e)).collect();
                let counts: Vec<String> = h.counts.iter().map(|c| c.to_string()).collect();
                let _ = writeln!(
                    out,
                    "{{\"kind\":\"hist\",\"id\":{},\"name\":\"{}\",\"edges\":[{}],\"counts\":[{}],\"sum\":{},\"n\":{}}}",
                    s.id,
                    esc(name),
                    edges.join(","),
                    counts.join(","),
                    num(h.sum),
                    h.n
                );
            }
        }
        out
    }

    /// Parse a trace back from its JSONL form.
    pub fn from_jsonl(text: &str) -> Result<Trace, String> {
        let mut streams: Vec<TraceStream> = Vec::new();
        let mut by_id: BTreeMap<u64, usize> = BTreeMap::new();
        let mut saw_header = false;
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let v = parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
            let kind = v
                .get("kind")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("line {}: missing kind", lineno + 1))?;
            if kind == "trace" {
                saw_header = true;
                continue;
            }
            let id = v
                .get("id")
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("line {}: missing id", lineno + 1))?;
            if kind == "stream" {
                let label = v
                    .get("label")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("line {}: stream missing label", lineno + 1))?
                    .to_string();
                by_id.insert(id, streams.len());
                streams.push(TraceStream {
                    id,
                    label,
                    events: Vec::new(),
                    counters: BTreeMap::new(),
                    gauges: BTreeMap::new(),
                    hists: BTreeMap::new(),
                });
                continue;
            }
            let idx = *by_id
                .get(&id)
                .ok_or_else(|| format!("line {}: event before stream {id}", lineno + 1))?;
            let s = &mut streams[idx];
            let name = || -> Result<String, String> {
                v.get("name")
                    .and_then(Json::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| format!("line {}: missing name", lineno + 1))
            };
            let field = |key: &str| -> Result<f64, String> {
                v.get(key)
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("line {}: missing {key}", lineno + 1))
            };
            match kind {
                "b" => s.events.push(TraceEvent {
                    kind: EventKind::Begin {
                        name: name()?,
                        arg: v.get("arg").and_then(Json::as_i64),
                    },
                    t: field("t")?,
                }),
                "e" => s.events.push(TraceEvent {
                    kind: EventKind::End,
                    t: field("t")?,
                }),
                "counter" => {
                    s.counters.insert(name()?, field("value")?);
                }
                "gauge" => {
                    s.gauges.insert(name()?, field("value")?);
                }
                "hist" => {
                    let nums = |key: &str| -> Result<Vec<f64>, String> {
                        v.get(key)
                            .and_then(Json::as_arr)
                            .map(|a| a.iter().filter_map(Json::as_f64).collect::<Vec<f64>>())
                            .ok_or_else(|| format!("line {}: missing {key}", lineno + 1))
                    };
                    let edges = nums("edges")?;
                    let counts = nums("counts")?;
                    if counts.len() != edges.len() + 1 {
                        return Err(format!(
                            "line {}: hist has {} counts for {} edges",
                            lineno + 1,
                            counts.len(),
                            edges.len()
                        ));
                    }
                    let mut h = Hist::new(&edges);
                    h.counts = counts.iter().map(|c| *c as u64).collect();
                    h.sum = field("sum")?;
                    h.n = v
                        .get("n")
                        .and_then(Json::as_u64)
                        .ok_or_else(|| format!("line {}: missing n", lineno + 1))?;
                    s.hists.insert(name()?, h);
                }
                other => return Err(format!("line {}: unknown kind `{other}`", lineno + 1)),
            }
        }
        if !saw_header {
            return Err("missing trace header line".to_string());
        }
        streams.sort_by_key(|s| s.id);
        Ok(Trace { streams })
    }

    /// Export as Chrome `trace_event` JSON: one `"X"` (complete) event
    /// per closed span, `ts`/`dur` in microseconds, `pid` 0, `tid` the
    /// stream id, plus one metadata event naming each stream.
    pub fn to_chrome_json(&self) -> String {
        let mut events: Vec<String> = Vec::new();
        for s in &self.streams {
            events.push(format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{},\"args\":{{\"name\":\"{}\"}}}}",
                s.id,
                esc(&s.label)
            ));
            let mut stack: Vec<(&str, f64, Option<i64>)> = Vec::new();
            for ev in &s.events {
                match &ev.kind {
                    EventKind::Begin { name, arg } => stack.push((name, ev.t, *arg)),
                    EventKind::End => {
                        if let Some((name, t0, arg)) = stack.pop() {
                            let args = match arg {
                                Some(a) => format!(",\"args\":{{\"arg\":{a}}}"),
                                None => String::new(),
                            };
                            events.push(format!(
                                "{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":0,\"tid\":{}{}}}",
                                esc(name),
                                num(t0 * 1e6),
                                num((ev.t - t0) * 1e6),
                                s.id,
                                args
                            ));
                        }
                    }
                }
            }
        }
        format!("{{\"traceEvents\":[{}]}}\n", events.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        let mut h = Hist::new(&[1.0, 10.0]);
        h.record(0.5);
        h.record(50.0);
        Trace {
            streams: vec![
                TraceStream {
                    id: 0,
                    label: "main".to_string(),
                    events: vec![
                        TraceEvent {
                            kind: EventKind::Begin {
                                name: "outer".to_string(),
                                arg: None,
                            },
                            t: 0.0,
                        },
                        TraceEvent {
                            kind: EventKind::Begin {
                                name: "inner".to_string(),
                                arg: Some(3),
                            },
                            t: 1.0,
                        },
                        TraceEvent {
                            kind: EventKind::End,
                            t: 2.5,
                        },
                        TraceEvent {
                            kind: EventKind::End,
                            t: 4.0,
                        },
                    ],
                    counters: [("work".to_string(), 5.0)].into_iter().collect(),
                    gauges: [("level".to_string(), 2.0)].into_iter().collect(),
                    hists: [("sizes".to_string(), h)].into_iter().collect(),
                },
                TraceStream {
                    id: 1,
                    label: "w\"0".to_string(),
                    events: vec![],
                    counters: [("work".to_string(), 7.0)].into_iter().collect(),
                    gauges: [("level".to_string(), 9.0)].into_iter().collect(),
                    hists: BTreeMap::new(),
                },
            ],
        }
    }

    #[test]
    fn jsonl_roundtrips_exactly() {
        let t = sample();
        let text = t.to_jsonl();
        let back = Trace::from_jsonl(&text).expect("parse");
        assert_eq!(back, t);
        // Re-serializing the parsed trace is byte-identical.
        assert_eq!(back.to_jsonl(), text);
    }

    #[test]
    fn span_totals_handle_nesting_and_unclosed() {
        let mut t = sample();
        // Add an unclosed begin; it must not contribute.
        t.streams[0].events.push(TraceEvent {
            kind: EventKind::Begin {
                name: "dangling".to_string(),
                arg: None,
            },
            t: 9.0,
        });
        let totals = t.span_totals();
        assert_eq!(totals.get("outer").map(|s| s.total_s), Some(4.0));
        assert_eq!(totals.get("inner").map(|s| s.total_s), Some(1.5));
        assert!(!totals.contains_key("dangling"));
    }

    #[test]
    fn merged_metrics() {
        let t = sample();
        assert_eq!(t.counters().get("work"), Some(&12.0));
        assert_eq!(t.gauges().get("level"), Some(&9.0));
        assert_eq!(t.hists().get("sizes").map(|h| h.n), Some(2));
    }

    #[test]
    fn chrome_export_has_complete_and_metadata_events() {
        let json = sample().to_chrome_json();
        let v = crate::jsonl::parse(json.trim()).expect("valid json");
        let evs = v.get("traceEvents").and_then(Json::as_arr).expect("array");
        let phases: Vec<&str> = evs
            .iter()
            .filter_map(|e| e.get("ph").and_then(Json::as_str))
            .collect();
        // 2 metadata (one per stream) + 2 complete spans.
        assert_eq!(phases.iter().filter(|p| **p == "M").count(), 2);
        assert_eq!(phases.iter().filter(|p| **p == "X").count(), 2);
        let inner = evs
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("inner"))
            .expect("inner event");
        assert_eq!(inner.get("ts").and_then(Json::as_f64), Some(1e6));
        assert_eq!(inner.get("dur").and_then(Json::as_f64), Some(1.5e6));
        assert_eq!(
            inner
                .get("args")
                .and_then(|a| a.get("arg"))
                .and_then(Json::as_i64),
            Some(3)
        );
    }

    #[test]
    fn from_jsonl_rejects_malformed_input() {
        assert!(Trace::from_jsonl("").is_err()); // no header
        assert!(Trace::from_jsonl("{\"kind\":\"b\",\"id\":0,\"name\":\"x\",\"t\":0}").is_err());
        let orphan =
            "{\"kind\":\"trace\",\"version\":1,\"streams\":0}\n{\"kind\":\"e\",\"id\":5,\"t\":0}";
        assert!(Trace::from_jsonl(orphan).is_err());
    }
}
