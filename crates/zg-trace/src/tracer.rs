//! The live side of tracing: a [`Tracer`] owns the collector, worker
//! threads install [`StreamHandle`]s, and instrumented code talks to an
//! *ambient* per-thread stream through free functions ([`span`],
//! [`counter_add`], ...) that no-op when nothing is installed.
//!
//! Determinism model:
//! - Stream ids are allocated on the **spawning** thread (via
//!   [`Tracer::handle`] / [`fork_stream`]) in program order, so the id
//!   assignment never depends on OS scheduling.
//! - Each stream buffers its own events locally; the only shared state is
//!   the submission list, and [`Tracer::finish`] sorts submitted streams
//!   by id. Two runs of the same program therefore produce the same
//!   stream order and the same per-stream event sequences regardless of
//!   thread interleaving (timestamps are whatever the injected clock
//!   returns; with no clock they are all `0.0`).

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::clock::Clock;
use crate::hist::Hist;
use crate::trace::{EventKind, SpanTotal, Trace, TraceEvent, TraceStream};

/// One raw event inside a stream buffer. `&'static str` names keep the
/// hot path allocation-free; ownership appears only at export time.
enum Ev {
    B {
        name: &'static str,
        t: f64,
        arg: Option<i64>,
    },
    E {
        t: f64,
    },
}

/// Per-stream buffer: the event log plus aggregated metrics. Metrics are
/// folded per stream (cheap BTreeMap updates) instead of being evented,
/// which keeps counter-heavy code like GEMM dispatch out of the log.
struct StreamBuf {
    id: u64,
    label: String,
    events: Vec<Ev>,
    counters: BTreeMap<&'static str, f64>,
    gauges: BTreeMap<&'static str, f64>,
    hists: BTreeMap<&'static str, Hist>,
}

impl StreamBuf {
    fn new(id: u64, label: String) -> StreamBuf {
        StreamBuf {
            id,
            label,
            events: Vec::new(),
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            hists: BTreeMap::new(),
        }
    }

    fn to_stream(&self) -> TraceStream {
        TraceStream {
            id: self.id,
            label: self.label.clone(),
            events: self
                .events
                .iter()
                .map(|e| match *e {
                    Ev::B { name, t, arg } => TraceEvent {
                        kind: EventKind::Begin {
                            name: name.to_string(),
                            arg,
                        },
                        t,
                    },
                    Ev::E { t } => TraceEvent {
                        kind: EventKind::End,
                        t,
                    },
                })
                .collect(),
            counters: self
                .counters
                .iter()
                .map(|(k, v)| (k.to_string(), *v))
                .collect(),
            gauges: self
                .gauges
                .iter()
                .map(|(k, v)| (k.to_string(), *v))
                .collect(),
            hists: self
                .hists
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        }
    }
}

/// Shared collector state behind a [`Tracer`].
struct Inner {
    clock: Option<Clock>,
    next_stream: AtomicU64,
    done: Mutex<Vec<StreamBuf>>,
}

impl Inner {
    fn now(&self) -> f64 {
        match &self.clock {
            Some(c) => c(),
            None => 0.0,
        }
    }

    fn submit(&self, buf: StreamBuf) {
        self.done
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(buf);
    }
}

/// An installed stream on the current thread.
struct Active {
    inner: Arc<Inner>,
    buf: StreamBuf,
}

thread_local! {
    /// Stack of installed streams; the top receives ambient events.
    /// It is a stack (not a slot) so inline fallback paths — e.g. a
    /// worker pool running its "worker" stream on the caller's thread
    /// when `workers == 1` — can nest installs without clobbering.
    static CURRENT: RefCell<Vec<Active>> = const { RefCell::new(Vec::new()) };
}

/// Owner of a trace collection. Cloning shares the same collector.
#[derive(Clone)]
pub struct Tracer {
    inner: Arc<Inner>,
}

impl Tracer {
    /// A tracer with no clock: every timestamp is `0.0`, but spans,
    /// counters, and stream structure are still recorded. This is the
    /// fully deterministic mode reproducibility tests run in.
    pub fn new() -> Tracer {
        Tracer::build(None)
    }

    /// A tracer timestamping with `clock` (see [`crate::wall_clock`] and
    /// [`crate::tick_clock`]). The clock must never call back into
    /// tracing APIs.
    pub fn with_clock(clock: Clock) -> Tracer {
        Tracer::build(Some(clock))
    }

    fn build(clock: Option<Clock>) -> Tracer {
        Tracer {
            inner: Arc::new(Inner {
                clock,
                next_stream: AtomicU64::new(0),
                done: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Allocate a stream id *now* (on this thread, in program order) and
    /// return a `Send` handle a worker thread can later [`install`].
    ///
    /// [`install`]: StreamHandle::install
    pub fn handle(&self, label: &str) -> StreamHandle {
        let id = self.inner.next_stream.fetch_add(1, Ordering::Relaxed);
        StreamHandle {
            inner: Arc::clone(&self.inner),
            id,
            label: label.to_string(),
        }
    }

    /// Allocate and install a stream on the current thread in one step.
    pub fn install(&self, label: &str) -> StreamGuard {
        self.handle(label).install()
    }

    /// Aggregate span/counter totals over everything visible right now:
    /// all submitted streams plus streams still installed on *this*
    /// thread. Spans still open are not counted. Taking totals before
    /// and after a region and calling [`Totals::delta`] yields that
    /// region's cost without stopping the tracer.
    pub fn totals(&self) -> Totals {
        totals_for(&self.inner)
    }

    /// Stop collecting and return the owned [`Trace`], streams sorted by
    /// id. Streams still installed on any thread are not included —
    /// drop their guards first.
    pub fn finish(self) -> Trace {
        let mut bufs =
            std::mem::take(&mut *self.inner.done.lock().unwrap_or_else(|e| e.into_inner()));
        bufs.sort_by_key(|b| b.id);
        Trace {
            streams: bufs.iter().map(StreamBuf::to_stream).collect(),
        }
    }
}

impl Default for Tracer {
    fn default() -> Tracer {
        Tracer::new()
    }
}

/// A pre-allocated stream id that can cross threads. Created by
/// [`Tracer::handle`] or [`fork_stream`]; consumed by [`install`].
///
/// [`install`]: StreamHandle::install
pub struct StreamHandle {
    inner: Arc<Inner>,
    id: u64,
    label: String,
}

impl StreamHandle {
    /// The stream id this handle was allocated.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Install the stream on the current thread; ambient events go to it
    /// until the returned guard drops (which submits the stream to the
    /// collector).
    pub fn install(self) -> StreamGuard {
        CURRENT.with(|c| {
            c.borrow_mut().push(Active {
                inner: Arc::clone(&self.inner),
                buf: StreamBuf::new(self.id, self.label),
            });
        });
        StreamGuard {
            inner: self.inner,
            id: self.id,
            _not_send: PhantomData,
        }
    }
}

/// RAII for an installed stream; dropping submits the stream's buffer to
/// the collector. Not `Send`: it must drop on the installing thread.
pub struct StreamGuard {
    inner: Arc<Inner>,
    id: u64,
    _not_send: PhantomData<*const ()>,
}

impl Drop for StreamGuard {
    fn drop(&mut self) {
        let buf = CURRENT.with(|c| {
            let mut stack = c.borrow_mut();
            stack
                .iter()
                .rposition(|a| a.buf.id == self.id && Arc::ptr_eq(&a.inner, &self.inner))
                .map(|pos| stack.remove(pos).buf)
        });
        if let Some(buf) = buf {
            self.inner.submit(buf);
        }
    }
}

/// RAII span: records a begin event at creation and the matching end
/// event on drop. If the stream it started on is no longer the thread's
/// top stream at drop time, the end is skipped (the stream was already
/// submitted), leaving an unclosed begin that replay tolerates.
#[must_use = "a span measures until it is dropped"]
pub struct Span {
    stream: u64,
    live: bool,
    _not_send: PhantomData<*const ()>,
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.live {
            return;
        }
        CURRENT.with(|c| {
            let mut stack = c.borrow_mut();
            if let Some(a) = stack.last_mut() {
                if a.buf.id == self.stream {
                    let t = a.inner.now();
                    a.buf.events.push(Ev::E { t });
                }
            }
        });
    }
}

fn span_inner(name: &'static str, arg: Option<i64>) -> Span {
    CURRENT.with(|c| {
        let mut stack = c.borrow_mut();
        match stack.last_mut() {
            None => Span {
                stream: 0,
                live: false,
                _not_send: PhantomData,
            },
            Some(a) => {
                let t = a.inner.now();
                a.buf.events.push(Ev::B { name, t, arg });
                Span {
                    stream: a.buf.id,
                    live: true,
                    _not_send: PhantomData,
                }
            }
        }
    })
}

/// Open a span named `name` on the current thread's stream. No-op (a
/// dead span) when no stream is installed.
pub fn span(name: &'static str) -> Span {
    span_inner(name, None)
}

/// Like [`span`] but attaches an integer argument (batch index, token
/// count, ...) to the begin event.
pub fn span_arg(name: &'static str, arg: i64) -> Span {
    span_inner(name, Some(arg))
}

/// Add `delta` to the named counter on the current stream. No-op when
/// tracing is off — safe to leave in hot loops.
pub fn counter_add(name: &'static str, delta: f64) {
    CURRENT.with(|c| {
        if let Some(a) = c.borrow_mut().last_mut() {
            *a.buf.counters.entry(name).or_insert(0.0) += delta;
        }
    });
}

/// Set the named gauge (a last-observed level, e.g. live tape nodes) on
/// the current stream.
pub fn gauge_set(name: &'static str, v: f64) {
    CURRENT.with(|c| {
        if let Some(a) = c.borrow_mut().last_mut() {
            a.buf.gauges.insert(name, v);
        }
    });
}

/// Record `v` into the named fixed-bucket histogram (default edges) on
/// the current stream.
pub fn hist_record(name: &'static str, v: f64) {
    CURRENT.with(|c| {
        if let Some(a) = c.borrow_mut().last_mut() {
            a.buf
                .hists
                .entry(name)
                .or_insert_with(Hist::default_edges)
                .record(v);
        }
    });
}

/// Whether a stream is installed on the current thread (i.e. ambient
/// tracing calls will record something).
pub fn enabled() -> bool {
    CURRENT.with(|c| !c.borrow().is_empty())
}

/// Allocate a child stream handle from the current thread's tracer, for
/// handing to a worker thread. Returns `None` when tracing is off.
///
/// Ids are allocated here, on the calling thread, so spawning handles in
/// loop order gives workers deterministic stream ids no matter how the
/// OS schedules them.
pub fn fork_stream(label: &str) -> Option<StreamHandle> {
    CURRENT.with(|c| {
        let stack = c.borrow();
        let top = stack.last()?;
        let id = top.inner.next_stream.fetch_add(1, Ordering::Relaxed);
        Some(StreamHandle {
            inner: Arc::clone(&top.inner),
            id,
            label: label.to_string(),
        })
    })
}

/// Ambient version of [`Tracer::totals`]: totals for the tracer behind
/// the current thread's top stream, or empty totals when tracing is off.
pub fn totals() -> Totals {
    CURRENT.with(|c| {
        let stack = c.borrow();
        match stack.last() {
            None => Totals::default(),
            Some(top) => totals_for(&top.inner),
        }
    })
}

fn totals_for(inner: &Arc<Inner>) -> Totals {
    let mut t = Totals::default();
    for buf in inner.done.lock().unwrap_or_else(|e| e.into_inner()).iter() {
        t.absorb(&buf.to_stream());
    }
    CURRENT.with(|c| {
        for a in c.borrow().iter().filter(|a| Arc::ptr_eq(&a.inner, inner)) {
            t.absorb(&a.buf.to_stream());
        }
    });
    t
}

/// Aggregated completed-span and counter totals, used for live
/// before/after deltas (the trainer's phase profile is built this way).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Totals {
    /// Completed-span totals keyed by span name (not path).
    pub spans: BTreeMap<String, SpanTotal>,
    /// Counter values keyed by name, summed across streams.
    pub counters: BTreeMap<String, f64>,
}

impl Totals {
    fn absorb(&mut self, s: &TraceStream) {
        for (name, total) in s.span_totals() {
            let e = self.spans.entry(name).or_default();
            e.count += total.count;
            e.total_s += total.total_s;
        }
        for (name, v) in &s.counters {
            *self.counters.entry(name.clone()).or_insert(0.0) += v;
        }
    }

    /// `self - earlier`, keyed by `self`'s entries (totals only grow, so
    /// every key in `earlier` is present in `self`).
    pub fn delta(&self, earlier: &Totals) -> Totals {
        let spans = self
            .spans
            .iter()
            .map(|(k, v)| {
                let prev = earlier.spans.get(k).cloned().unwrap_or_default();
                (
                    k.clone(),
                    SpanTotal {
                        count: v.count.saturating_sub(prev.count),
                        total_s: v.total_s - prev.total_s,
                    },
                )
            })
            .collect();
        let counters = self
            .counters
            .iter()
            .map(|(k, v)| {
                (
                    k.clone(),
                    v - earlier.counters.get(k).copied().unwrap_or(0.0),
                )
            })
            .collect();
        Totals { spans, counters }
    }

    /// Total seconds spent in completed spans named `name` (0 if absent).
    pub fn span_seconds(&self, name: &str) -> f64 {
        self.spans.get(name).map(|s| s.total_s).unwrap_or(0.0)
    }

    /// Number of completed spans named `name` (0 if absent).
    pub fn span_count(&self, name: &str) -> u64 {
        self.spans.get(name).map(|s| s.count).unwrap_or(0)
    }

    /// Counter value (0 if absent).
    pub fn counter(&self, name: &str) -> f64 {
        self.counters.get(name).copied().unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::tick_clock;

    #[test]
    fn ambient_calls_are_noops_without_install() {
        assert!(!enabled());
        let s = span("nothing");
        counter_add("c", 1.0);
        gauge_set("g", 2.0);
        hist_record("h", 3.0);
        drop(s);
        assert!(fork_stream("w").is_none());
        assert_eq!(totals(), Totals::default());
    }

    #[test]
    fn spans_and_metrics_land_in_the_trace() {
        let tracer = Tracer::with_clock(tick_clock());
        {
            let _g = tracer.install("main");
            {
                let _outer = span("outer");
                let _inner = span_arg("inner", 7);
                counter_add("work", 2.0);
                counter_add("work", 3.0);
                gauge_set("level", 1.0);
                gauge_set("level", 4.0);
                hist_record("sizes", 10.0);
            }
        }
        let trace = tracer.finish();
        assert_eq!(trace.streams.len(), 1);
        let s = &trace.streams[0];
        assert_eq!(s.label, "main");
        assert_eq!(s.events.len(), 4); // outer-B, inner-B, inner-E, outer-E
        assert_eq!(s.counters.get("work"), Some(&5.0));
        assert_eq!(s.gauges.get("level"), Some(&4.0));
        assert_eq!(s.hists.get("sizes").map(|h| h.n), Some(1));
        let totals = trace.span_totals();
        assert_eq!(totals.get("outer").map(|t| t.count), Some(1));
        assert_eq!(totals.get("inner").map(|t| t.count), Some(1));
        // tick clock: outer B=0, inner B=1, inner E=2, outer E=3.
        assert_eq!(totals.get("outer").map(|t| t.total_s), Some(3.0));
        assert_eq!(totals.get("inner").map(|t| t.total_s), Some(1.0));
    }

    #[test]
    fn worker_streams_merge_in_handle_order() {
        let tracer = Tracer::new();
        let _main = tracer.install("main");
        // Allocate handles in loop order on this thread, then install on
        // workers spawned in reverse to show ids do not depend on spawn
        // or completion order.
        let handles: Vec<StreamHandle> = (0..4).map(|i| tracer.handle(&format!("w{i}"))).collect();
        std::thread::scope(|scope| {
            for h in handles.into_iter().rev() {
                scope.spawn(move || {
                    let _g = h.install();
                    let _s = span("work");
                    counter_add("items", 1.0);
                });
            }
        });
        drop(_main);
        let trace = tracer.finish();
        let labels: Vec<&str> = trace.streams.iter().map(|s| s.label.as_str()).collect();
        assert_eq!(labels, vec!["main", "w0", "w1", "w2", "w3"]);
        assert_eq!(trace.counters().get("items"), Some(&4.0));
    }

    #[test]
    fn fork_stream_allocates_from_ambient_tracer() {
        let tracer = Tracer::new();
        let _main = tracer.install("main");
        let h = fork_stream("child").expect("ambient tracer installed");
        std::thread::scope(|scope| {
            scope.spawn(move || {
                let _g = h.install();
                counter_add("child_work", 1.0);
            });
        });
        drop(_main);
        let trace = tracer.finish();
        assert_eq!(trace.streams.len(), 2);
        assert_eq!(trace.counters().get("child_work"), Some(&1.0));
    }

    #[test]
    fn stacked_installs_route_to_the_top_stream() {
        let tracer = Tracer::new();
        let _outer = tracer.install("outer");
        counter_add("c", 1.0);
        {
            // Inline worker fallback: a second stream on the same thread.
            let _inner = tracer.install("inner");
            counter_add("c", 10.0);
        }
        counter_add("c", 100.0);
        drop(_outer);
        let trace = tracer.finish();
        // inner submitted first (dropped first), but sort is by id.
        assert_eq!(trace.streams[0].label, "outer");
        assert_eq!(trace.streams[0].counters.get("c"), Some(&101.0));
        assert_eq!(trace.streams[1].label, "inner");
        assert_eq!(trace.streams[1].counters.get("c"), Some(&10.0));
    }

    #[test]
    fn totals_delta_isolates_a_region() {
        let tracer = Tracer::with_clock(tick_clock());
        let _g = tracer.install("main");
        {
            let _s = span("phase");
            counter_add("n", 1.0);
        }
        let before = tracer.totals();
        {
            let _s = span("phase");
            let _s2 = span("phase");
            counter_add("n", 5.0);
        }
        let after = tracer.totals();
        let d = after.delta(&before);
        assert_eq!(d.span_count("phase"), 2);
        assert_eq!(d.counter("n"), 5.0);
        // Each tick-clock span costs its nesting window; what matters is
        // that the pre-existing phase time is subtracted out.
        assert!(d.span_seconds("phase") > 0.0);
        assert_eq!(before.span_count("phase"), 1);
    }

    #[test]
    fn open_spans_are_excluded_from_totals() {
        let tracer = Tracer::with_clock(tick_clock());
        let _g = tracer.install("main");
        let _open = span("open");
        {
            let _closed = span("closed");
        }
        let t = tracer.totals();
        assert_eq!(t.span_count("closed"), 1);
        assert_eq!(t.span_count("open"), 0);
    }
}
