//! Tumbling-window metric shards keyed to the injected clock: every
//! observation lands in the shard for window `⌊t / width⌋`, shards are
//! stored in `BTreeMap`s, and range queries merge shards element-wise —
//! so windowed p50/p99 snapshots, rates, and peaks are pure functions of
//! the (time, value) observation sequence, never of wall time or
//! insertion interleaving. The zg-serve ops plane builds its windowed
//! latency/QPS/gauge series on these types.

use std::collections::BTreeMap;

use crate::hist::Hist;

/// Window index of time `t` under `width` (seconds): `⌊t / width⌋`,
/// clamped at zero for non-positive times.
pub fn window_of(t: f64, width: f64) -> u64 {
    debug_assert!(width > 0.0, "window width must be positive");
    if t <= 0.0 || width <= 0.0 {
        return 0;
    }
    (t / width) as u64
}

/// Tumbling-window shards of fixed-bucket histograms (one [`Hist`] per
/// non-empty window). All shards share one edge layout, so merging a
/// window range is element-wise count addition.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowedHist {
    width: f64,
    edges: Vec<f64>,
    shards: BTreeMap<u64, Hist>,
}

impl WindowedHist {
    /// Empty shard sequence over windows of `width` seconds with the
    /// given bucket edges (see [`Hist::new`] for edge requirements).
    pub fn new(width: f64, edges: &[f64]) -> WindowedHist {
        assert!(width > 0.0, "window width must be positive");
        WindowedHist {
            width,
            edges: edges.to_vec(),
            shards: BTreeMap::new(),
        }
    }

    /// Window width in seconds.
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Window index of time `t`.
    pub fn window_of(&self, t: f64) -> u64 {
        window_of(t, self.width)
    }

    /// Record `v` into the shard for time `t`.
    pub fn record(&mut self, t: f64, v: f64) {
        let w = self.window_of(t);
        self.shards
            .entry(w)
            .or_insert_with(|| Hist::new(&self.edges))
            .record(v);
    }

    /// The shard for window `w`, if any observation landed there.
    pub fn shard(&self, w: u64) -> Option<&Hist> {
        self.shards.get(&w)
    }

    /// Non-empty windows in ascending order.
    pub fn windows(&self) -> impl Iterator<Item = (u64, &Hist)> {
        self.shards.iter().map(|(w, h)| (*w, h))
    }

    /// Element-wise merge of every shard in `from..=to` (an empty
    /// histogram when the range holds none).
    pub fn merged_range(&self, from: u64, to: u64) -> Hist {
        let mut out = Hist::new(&self.edges);
        for (_, h) in self.shards.range(from..=to) {
            out.merge(h);
        }
        out
    }

    /// Drop shards for windows strictly before `min` (bounded memory
    /// under long runs).
    pub fn retain_from(&mut self, min: u64) {
        self.shards = self.shards.split_off(&min);
    }
}

/// Tumbling-window counter: per-window sums of deltas.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WindowedCounter {
    width: f64,
    shards: BTreeMap<u64, f64>,
}

impl WindowedCounter {
    /// Empty counter over windows of `width` seconds.
    pub fn new(width: f64) -> WindowedCounter {
        assert!(width > 0.0, "window width must be positive");
        WindowedCounter {
            width,
            shards: BTreeMap::new(),
        }
    }

    /// Add `delta` to the shard for time `t`.
    pub fn add(&mut self, t: f64, delta: f64) {
        *self.shards.entry(window_of(t, self.width)).or_insert(0.0) += delta;
    }

    /// Value of window `w` (`0.0` when nothing landed there).
    pub fn get(&self, w: u64) -> f64 {
        self.shards.get(&w).copied().unwrap_or(0.0)
    }

    /// Sum over windows `from..=to`. Summed in ascending window order,
    /// so the result is deterministic.
    pub fn sum_range(&self, from: u64, to: u64) -> f64 {
        self.shards.range(from..=to).map(|(_, v)| v).sum()
    }

    /// Drop shards for windows strictly before `min`.
    pub fn retain_from(&mut self, min: u64) {
        self.shards = self.shards.split_off(&min);
    }
}

/// Tumbling-window gauge: per-window last-observed and peak levels.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WindowedGauge {
    width: f64,
    shards: BTreeMap<u64, (f64, f64)>,
}

impl WindowedGauge {
    /// Empty gauge over windows of `width` seconds.
    pub fn new(width: f64) -> WindowedGauge {
        assert!(width > 0.0, "window width must be positive");
        WindowedGauge {
            width,
            shards: BTreeMap::new(),
        }
    }

    /// Observe level `v` at time `t`: the window's last value becomes
    /// `v`, its peak becomes `max(peak, v)`.
    pub fn set(&mut self, t: f64, v: f64) {
        let e = self
            .shards
            .entry(window_of(t, self.width))
            .or_insert((v, v));
        e.0 = v;
        e.1 = e.1.max(v);
    }

    /// Last value observed in window `w`, if any.
    pub fn last(&self, w: u64) -> Option<f64> {
        self.shards.get(&w).map(|(last, _)| *last)
    }

    /// Peak value observed in window `w`, if any.
    pub fn max(&self, w: u64) -> Option<f64> {
        self.shards.get(&w).map(|(_, max)| *max)
    }

    /// Drop shards for windows strictly before `min`.
    pub fn retain_from(&mut self, min: u64) {
        self.shards = self.shards.split_off(&min);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_of_floors_and_clamps() {
        assert_eq!(window_of(0.0, 1.0), 0);
        assert_eq!(window_of(0.999, 1.0), 0);
        assert_eq!(window_of(1.0, 1.0), 1);
        assert_eq!(window_of(7.25, 0.5), 14);
        assert_eq!(window_of(-3.0, 1.0), 0);
    }

    #[test]
    fn hist_shards_split_by_window_and_merge_by_range() {
        let mut wh = WindowedHist::new(1.0, &[1.0, 10.0]);
        wh.record(0.2, 0.5);
        wh.record(0.9, 5.0);
        wh.record(1.1, 5.0);
        wh.record(3.0, 50.0);
        assert_eq!(wh.shard(0).map(|h| h.n), Some(2));
        assert_eq!(wh.shard(1).map(|h| h.n), Some(1));
        assert_eq!(wh.shard(2), None);
        let merged = wh.merged_range(0, 1);
        assert_eq!(merged.n, 3);
        assert_eq!(merged.counts, vec![1, 2, 0]);
        // Full-range merge equals recording everything into one hist.
        assert_eq!(wh.merged_range(0, 3).n, 4);
    }

    #[test]
    fn hist_retain_drops_old_shards_only() {
        let mut wh = WindowedHist::new(1.0, &[1.0]);
        wh.record(0.5, 1.0);
        wh.record(5.5, 1.0);
        wh.retain_from(3);
        assert_eq!(wh.shard(0), None);
        assert_eq!(wh.shard(5).map(|h| h.n), Some(1));
    }

    #[test]
    fn counter_sums_per_window_and_range() {
        let mut c = WindowedCounter::new(0.5);
        c.add(0.1, 1.0);
        c.add(0.4, 2.0);
        c.add(0.6, 10.0);
        c.add(2.0, 100.0);
        assert_eq!(c.get(0), 3.0);
        assert_eq!(c.get(1), 10.0);
        assert_eq!(c.get(3), 0.0);
        assert_eq!(c.sum_range(0, 1), 13.0);
        assert_eq!(c.sum_range(0, 4), 113.0);
        c.retain_from(1);
        assert_eq!(c.get(0), 0.0);
        assert_eq!(c.sum_range(0, 4), 110.0);
    }

    #[test]
    fn gauge_tracks_last_and_peak_per_window() {
        let mut g = WindowedGauge::new(1.0);
        g.set(0.1, 5.0);
        g.set(0.2, 9.0);
        g.set(0.3, 2.0);
        assert_eq!(g.last(0), Some(2.0));
        assert_eq!(g.max(0), Some(9.0));
        assert_eq!(g.last(1), None);
        g.set(4.0, 1.0);
        g.retain_from(4);
        assert_eq!(g.max(0), None);
        assert_eq!(g.max(4), Some(1.0));
    }
}
