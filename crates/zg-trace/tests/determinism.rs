//! Property tests for the collector's determinism guarantees: for a
//! fixed workload, the merged trace bytes must not depend on how many
//! worker threads ran it or how the OS scheduled them, and the JSONL
//! form must roundtrip exactly.

use proptest::prelude::*;
use zg_trace::{counter_add, fork_stream, hist_record, span, span_arg, Trace, Tracer};

/// Deterministic per-task workload: nested spans, counters, histograms,
/// derived only from the op bytes.
fn run_task(ops: &[u8]) {
    for &op in ops {
        let _s = match op % 3 {
            0 => span("op.a"),
            1 => span_arg("op.b", i64::from(op)),
            _ => span("op.c"),
        };
        counter_add("ops", 1.0);
        hist_record("op_size", f64::from(op));
        if op % 4 == 0 {
            let _inner = span("op.nested");
        }
    }
}

/// Run every task on its own stream (ids allocated in task order on the
/// main thread), executed by `workers` threads with tasks dealt
/// round-robin, and return the serialized trace.
fn run_with_workers(tasks: &[Vec<u8>], workers: usize) -> String {
    let tracer = Tracer::new();
    let main_guard = tracer.install("main");
    let handles: Vec<_> = (0..tasks.len())
        .map(|i| fork_stream(&format!("task{i}")).expect("tracer installed"))
        .collect();
    let mut buckets: Vec<Vec<(zg_trace::StreamHandle, &[u8])>> =
        (0..workers).map(|_| Vec::new()).collect();
    for (i, (h, t)) in handles.into_iter().zip(tasks).enumerate() {
        buckets[i % workers].push((h, t.as_slice()));
    }
    std::thread::scope(|scope| {
        for bucket in buckets {
            scope.spawn(move || {
                for (h, ops) in bucket {
                    let _g = h.install();
                    run_task(ops);
                }
            });
        }
    });
    drop(main_guard);
    tracer.finish().to_jsonl()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn merged_trace_bytes_are_independent_of_worker_count(
        tasks in prop::collection::vec(prop::collection::vec(0u8..16, 0..8), 0..10),
    ) {
        let reference = run_with_workers(&tasks, 1);
        for workers in [2usize, 3, 7] {
            let got = run_with_workers(&tasks, workers);
            prop_assert!(got == reference, "trace differs at workers = {}", workers);
        }
    }

    #[test]
    fn jsonl_roundtrips_for_generated_traces(
        tasks in prop::collection::vec(prop::collection::vec(0u8..16, 0..8), 0..6),
    ) {
        let text = run_with_workers(&tasks, 3);
        let parsed = Trace::from_jsonl(&text).expect("parse serialized trace");
        prop_assert_eq!(parsed.to_jsonl(), text);
    }

    #[test]
    fn span_totals_match_event_counts(
        tasks in prop::collection::vec(prop::collection::vec(0u8..16, 1..8), 1..6),
    ) {
        let text = run_with_workers(&tasks, 2);
        let trace = Trace::from_jsonl(&text).expect("parse");
        let total_ops: usize = tasks.iter().map(Vec::len).sum();
        let totals = trace.span_totals();
        let spans: u64 = totals.values().map(|t| t.count).sum();
        let nested: u64 = tasks
            .iter()
            .flatten()
            .filter(|op| *op % 4 == 0)
            .count() as u64;
        prop_assert_eq!(spans, total_ops as u64 + nested);
        prop_assert_eq!(trace.counters().get("ops").copied(), Some(total_ops as f64));
        prop_assert_eq!(trace.hists().get("op_size").map(|h| h.n), Some(total_ops as u64));
    }
}
