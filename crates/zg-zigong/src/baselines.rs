//! Measured baselines for the Table 2 benchmark: majority-class, random
//! guess, the untrained base model (zero-shot), and a logistic-regression
//! expert system — every one of these actually runs on the data.
//! (External LLM columns that cannot be rerun are handled by
//! [`crate::replay`].)

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use zg_data::Record;
use zg_influence::{AgentConfig, AgentModel};

use crate::evaluator::{CreditClassifier, EvalItem};

/// Predicts the training majority class for every item.
pub struct MajorityClass {
    positive: bool,
}

impl MajorityClass {
    /// Fit to training records (picks the majority label).
    pub fn fit(train: &[&Record]) -> Self {
        let pos = train.iter().filter(|r| r.label).count();
        MajorityClass {
            positive: pos * 2 > train.len(),
        }
    }
}

impl CreditClassifier for MajorityClass {
    fn name(&self) -> String {
        "Majority".into()
    }

    fn answer(&mut self, item: &EvalItem) -> String {
        item.example.candidates[self.positive as usize].clone()
    }

    fn score(&mut self, _item: &EvalItem) -> f64 {
        self.positive as u8 as f64
    }
}

/// Uniform random answers (the floor every model must beat).
pub struct RandomGuess {
    rng: StdRng,
}

impl RandomGuess {
    /// Seeded random guesser.
    pub fn new(seed: u64) -> Self {
        RandomGuess {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl CreditClassifier for RandomGuess {
    fn name(&self) -> String {
        "Random".into()
    }

    fn answer(&mut self, item: &EvalItem) -> String {
        let i = self.rng.gen_range(0..2usize);
        item.example.candidates[i].clone()
    }

    fn score(&mut self, _item: &EvalItem) -> f64 {
        self.rng.gen()
    }
}

/// The SOTA-expert-system stand-in: logistic regression on the records'
/// numeric features (CALM's comparison point; Table 2's "expert system
/// models" row group).
pub struct LogisticExpert {
    model: AgentModel,
    threshold: f64,
}

impl LogisticExpert {
    /// Fit on training records. The decision threshold is the training
    /// positive rate quantile, which handles imbalanced fraud data far
    /// better than 0.5.
    pub fn fit(train: &[&Record], seed: u64) -> Self {
        let xs: Vec<Vec<f32>> = train.iter().map(|r| r.numeric_features()).collect();
        let ys: Vec<bool> = train.iter().map(|r| r.label).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let (model, _) = AgentModel::fit(&xs, &ys, &AgentConfig::default(), &mut rng);
        // Threshold at the score quantile matching the class prior.
        let mut probs: Vec<f64> = xs.iter().map(|x| model.predict_proba(x) as f64).collect();
        // INVARIANT: predicted probabilities are finite sigmoid outputs.
        probs.sort_by(|a, b| a.partial_cmp(b).expect("finite probs"));
        let pos_rate = ys.iter().filter(|&&y| y).count() as f64 / ys.len() as f64;
        let idx = (((1.0 - pos_rate) * probs.len() as f64) as usize).min(probs.len() - 1);
        LogisticExpert {
            model,
            threshold: probs[idx],
        }
    }
}

impl CreditClassifier for LogisticExpert {
    fn name(&self) -> String {
        "Expert-LR".into()
    }

    fn answer(&mut self, item: &EvalItem) -> String {
        let p = self.model.predict_proba(&item.record.numeric_features()) as f64;
        item.example.candidates[(p >= self.threshold) as usize].clone()
    }

    fn score(&mut self, item: &EvalItem) -> f64 {
        self.model.predict_proba(&item.record.numeric_features()) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::{eval_items, evaluate_classifier};
    use zg_data::{ccfraud, german};

    #[test]
    fn majority_matches_prior_on_german() {
        let ds = german(500, 1);
        let (train, test) = ds.split(0.2);
        let mut m = MajorityClass::fit(&train);
        let items = eval_items(&ds, &test);
        let r = evaluate_classifier(&mut m, &items);
        // German is 70/30 good/bad: majority = negative, acc ≈ 0.7.
        assert!(r.eval.acc > 0.6 && r.eval.acc < 0.8, "acc {}", r.eval.acc);
        assert_eq!(r.eval.f1, 0.0);
        assert_eq!(r.eval.miss, 0.0);
    }

    #[test]
    fn random_guess_near_half_on_balanced() {
        let ds = german(2000, 2);
        let (_, test) = ds.split(0.5);
        let items = eval_items(&ds, &test);
        let mut m = RandomGuess::new(3);
        let r = evaluate_classifier(&mut m, &items);
        assert!((r.eval.acc - 0.5).abs() < 0.06, "acc {}", r.eval.acc);
        assert!((r.auc - 0.5).abs() < 0.06);
    }

    #[test]
    fn expert_beats_majority_on_german() {
        let ds = german(1000, 3);
        let (train, test) = ds.split(0.2);
        let items = eval_items(&ds, &test);
        let mut expert = LogisticExpert::fit(&train, 4);
        let r_exp = evaluate_classifier(&mut expert, &items);
        let mut maj = MajorityClass::fit(&train);
        let r_maj = evaluate_classifier(&mut maj, &items);
        assert!(
            r_exp.eval.f1 > r_maj.eval.f1 + 0.2,
            "expert F1 {} vs majority {}",
            r_exp.eval.f1,
            r_maj.eval.f1
        );
        assert!(r_exp.ks > 0.25, "expert KS {}", r_exp.ks);
    }

    #[test]
    fn expert_finds_fraud_signal() {
        let ds = ccfraud(3000, 5);
        let (train, test) = ds.split(0.25);
        let items = eval_items(&ds, &test);
        let mut expert = LogisticExpert::fit(&train, 6);
        let r = evaluate_classifier(&mut expert, &items);
        assert!(r.auc > 0.7, "fraud AUC {}", r.auc);
        assert!(r.eval.f1 > 0.2, "fraud F1 {}", r.eval.f1);
    }
}
