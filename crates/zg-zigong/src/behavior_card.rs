//! The **Behavior Card service** (paper §1 contribution 3: "successfully
//! deployed in our Behavior Card service, which supports the operational
//! model in the loan process"): a deployment-style scoring facade over a
//! trained classifier, with decision thresholds, reason codes, and an
//! audit log — the pieces a loan-operations integration actually needs.

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use zg_data::{Dataset, Record, TaskKind};
use zg_instruct::render_classification;

use crate::evaluator::{CreditClassifier, EvalItem};

/// A scoring decision returned to the loan pipeline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Decision {
    /// Monotone risk score in [0, 1] (higher = riskier).
    pub risk_score: f64,
    /// Whether the application passes the risk gate.
    pub approved: bool,
    /// Threshold in effect when the decision was made.
    pub threshold: f64,
    /// Top contributing feature names (reason codes).
    pub reasons: Vec<String>,
}

/// One audit-log entry (regulatory traceability).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AuditEntry {
    /// Monotone request id.
    pub request_id: u64,
    /// Record id scored.
    pub record_id: usize,
    /// Risk score produced.
    pub risk_score: f64,
    /// Decision.
    pub approved: bool,
}

/// The service: wraps any [`CreditClassifier`] with decision logic.
pub struct BehaviorCardService<C: CreditClassifier> {
    classifier: C,
    meta: Dataset,
    threshold: f64,
    audit: Mutex<Vec<AuditEntry>>,
    counter: AtomicU64,
}

impl<C: CreditClassifier> BehaviorCardService<C> {
    /// Build a service. `meta` supplies the task framing (prompt
    /// rendering); its records are not used.
    pub fn new(classifier: C, meta: &Dataset, threshold: f64) -> Self {
        assert!((0.0..=1.0).contains(&threshold), "threshold in [0,1]");
        BehaviorCardService {
            classifier,
            meta: Dataset {
                records: Vec::new(),
                ..meta.clone()
            },
            threshold,
            audit: Mutex::new(Vec::new()),
            counter: AtomicU64::new(0),
        }
    }

    /// Score one application/behavior record and log the decision.
    pub fn score(&mut self, record: &Record) -> Decision {
        let item = EvalItem {
            record,
            example: render_classification(&self.meta, record),
        };
        let risk_score = self.classifier.score(&item).clamp(0.0, 1.0);
        let approved = risk_score < self.threshold;
        let decision = Decision {
            risk_score,
            approved,
            threshold: self.threshold,
            reasons: reason_codes(record),
        };
        let request_id = self.counter.fetch_add(1, Ordering::Relaxed);
        self.audit.lock().push(AuditEntry {
            request_id,
            record_id: record.id,
            risk_score,
            approved,
        });
        decision
    }

    /// Score a batch.
    pub fn score_batch(&mut self, records: &[&Record]) -> Vec<Decision> {
        records.iter().map(|r| self.score(r)).collect()
    }

    /// Update the approval threshold (risk-policy change).
    pub fn set_threshold(&mut self, threshold: f64) {
        assert!((0.0..=1.0).contains(&threshold));
        self.threshold = threshold;
    }

    /// Current threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Snapshot of the audit log.
    pub fn audit_log(&self) -> Vec<AuditEntry> {
        self.audit.lock().clone()
    }

    /// Approval rate over the audit history.
    pub fn approval_rate(&self) -> f64 {
        let log = self.audit.lock();
        if log.is_empty() {
            return 0.0;
        }
        log.iter().filter(|e| e.approved).count() as f64 / log.len() as f64
    }
}

/// Crude reason codes: the behavior features most associated with risk
/// (by name, for the operational model's explanation slot).
fn reason_codes(record: &Record) -> Vec<String> {
    const RISKY: [&str; 4] = [
        "late payment count",
        "credit utilization percent",
        "new loan applications",
        "status of checking account",
    ];
    record
        .features
        .iter()
        .filter(|(name, _)| RISKY.contains(&name.as_str()))
        .map(|(name, v)| format!("{name}: {v}"))
        .collect()
}

/// Default dataset metadata for a standalone behavior-card deployment.
pub fn behavior_card_meta() -> Dataset {
    Dataset {
        name: "Behavior Card".to_string(),
        task: TaskKind::BehaviorRisk,
        records: Vec::new(),
        positive_name: "Yes".to_string(),
        negative_name: "No".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zg_data::{behavior_sequences, BehaviorConfig};

    /// Score = label (oracle) for deterministic service tests.
    struct OracleScorer;
    impl CreditClassifier for OracleScorer {
        fn name(&self) -> String {
            "oracle".into()
        }
        fn answer(&mut self, item: &EvalItem) -> String {
            item.example.candidates[item.record.label as usize].clone()
        }
        fn score(&mut self, item: &EvalItem) -> f64 {
            if item.record.label {
                0.9
            } else {
                0.1
            }
        }
    }

    fn sample_records() -> Dataset {
        behavior_sequences(
            &BehaviorConfig {
                n_users: 20,
                periods: 3,
                ..Default::default()
            },
            1,
        )
    }

    #[test]
    fn decisions_respect_threshold() {
        let ds = sample_records();
        let mut svc = BehaviorCardService::new(OracleScorer, &ds, 0.5);
        for r in ds.records.iter().take(10) {
            let d = svc.score(r);
            assert_eq!(d.approved, !r.label, "risky users must be declined");
            assert_eq!(d.threshold, 0.5);
        }
    }

    #[test]
    fn audit_log_grows_and_ids_monotone() {
        let ds = sample_records();
        let mut svc = BehaviorCardService::new(OracleScorer, &ds, 0.5);
        let recs: Vec<&Record> = ds.records.iter().take(5).collect();
        svc.score_batch(&recs);
        let log = svc.audit_log();
        assert_eq!(log.len(), 5);
        for (i, e) in log.iter().enumerate() {
            assert_eq!(e.request_id, i as u64);
        }
    }

    #[test]
    fn threshold_update_changes_decisions() {
        let ds = sample_records();
        let mut svc = BehaviorCardService::new(OracleScorer, &ds, 0.95);
        let risky = ds.records.iter().find(|r| r.label).expect("risky user");
        assert!(svc.score(risky).approved, "lenient threshold approves");
        svc.set_threshold(0.2);
        assert!(!svc.score(risky).approved, "strict threshold declines");
    }

    #[test]
    fn approval_rate_tracks_history() {
        let ds = sample_records();
        let mut svc = BehaviorCardService::new(OracleScorer, &ds, 0.5);
        let recs: Vec<&Record> = ds.records.iter().collect();
        svc.score_batch(&recs);
        let expected = recs.iter().filter(|r| !r.label).count() as f64 / recs.len() as f64;
        assert!((svc.approval_rate() - expected).abs() < 1e-9);
    }

    #[test]
    fn reason_codes_surface_risky_features() {
        let ds = sample_records();
        let mut svc = BehaviorCardService::new(OracleScorer, &ds, 0.5);
        let d = svc.score(&ds.records[0]);
        assert!(d.reasons.iter().any(|r| r.contains("late payment count")));
    }
}
