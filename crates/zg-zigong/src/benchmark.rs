//! The Table 2 benchmark runner: multi-task instruction construction with
//! the paper's 70/30 pruned mix, tokenizer + LoRA SFT training of ZiGong,
//! measured baselines, calibrated replay columns, and paper-style table
//! rendering.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use zg_data::{Dataset, Record};
use zg_influence::{
    agent_checkpoint_grads, hybrid_mix, influence_scores, select_top_k, AgentConfig, AgentModel,
    MixConfig, TracConfig,
};
use zg_instruct::{render_classification, InstructExample};
use zg_lora::attach;
use zg_model::CausalLm;

use crate::baselines::{LogisticExpert, MajorityClass, RandomGuess};
use crate::config::ZiGongConfig;
use crate::corpus::{to_pretrain_sample, tokenize_all, train_tokenizer};
use crate::evaluator::{eval_items, evaluate_classifier, evaluate_zigong, CellResult, ZiGongModel};
use crate::replay::{paper_table2, ReplayBaseline};
use crate::trainer::{train_sft, TrainOrder, TrainReport};

/// Options for a Table 2 run.
#[derive(Debug, Clone)]
pub struct Table2Options {
    /// Pipeline seed.
    pub seed: u64,
    /// Per-dataset cap on balanced training examples for the SFT mix.
    pub train_cap: usize,
    /// Per-dataset cap on evaluated test records.
    pub test_cap: usize,
    /// Include the calibrated replay columns for external models.
    pub include_replay: bool,
    /// Auxiliary multi-task examples (sentiment analysis + income QA, the
    /// other task families of the paper's Figure 1 workflow) appended to
    /// the SFT mix. `0` disables.
    pub aux_task_cap: usize,
    /// Worker threads for evaluating the measured LM rows (`0` = all
    /// available cores, `1` = serial). Any value yields bit-identical
    /// metrics; see [`evaluate_zigong`].
    pub eval_workers: usize,
    /// Evaluate the measured LM rows with int8 quantized inference on
    /// frozen base weights (the LoRA-frozen ZiGong / SFT models; a model
    /// with no frozen weights stays in exact f32). Metrics remain
    /// bit-identical across `eval_workers` settings — replicas
    /// re-calibrate from the same weights.
    pub quantized: bool,
    /// ZiGong configuration.
    pub config: ZiGongConfig,
}

impl Default for Table2Options {
    fn default() -> Self {
        Table2Options {
            seed: 20_250_706,
            train_cap: 240,
            test_cap: 120,
            include_replay: true,
            aux_task_cap: 0,
            eval_workers: 0,
            quantized: false,
            config: ZiGongConfig::miniature(20_250_706),
        }
    }
}

/// One rendered row of the benchmark.
pub struct Table2Row {
    /// Model display name.
    pub model: String,
    /// Whether the row was measured end-to-end (vs replayed).
    pub measured: bool,
    /// One cell per dataset (None = not applicable).
    pub cells: Vec<Option<CellResult>>,
}

/// Full benchmark output.
pub struct Table2 {
    /// Dataset names, in paper order.
    pub datasets: Vec<String>,
    /// Model rows.
    pub rows: Vec<Table2Row>,
    /// Training report of the measured ZiGong model.
    pub train_report: Option<TrainReport>,
}

/// Class-balanced sample of training records, capped at `cap` (sampling
/// with replacement when a class is scarce — standard practice for the
/// heavily imbalanced fraud sets).
pub fn balanced_train_records<'a>(
    train: &[&'a Record],
    cap: usize,
    rng: &mut StdRng,
) -> Vec<&'a Record> {
    let pos: Vec<&Record> = train.iter().copied().filter(|r| r.label).collect();
    let neg: Vec<&Record> = train.iter().copied().filter(|r| !r.label).collect();
    assert!(!pos.is_empty() && !neg.is_empty(), "need both classes");
    let per_class = (cap / 2).max(1);
    let mut out = Vec::with_capacity(per_class * 2);
    for _ in 0..per_class {
        // INVARIANT: both classes asserted non-empty above.
        out.push(*pos.choose(rng).expect("non-empty"));
        // INVARIANT: both classes asserted non-empty above.
        out.push(*neg.choose(rng).expect("non-empty"));
    }
    out
}

/// Agent-model TracIn scores for tabular records (γ=1; tabular data has no
/// periods). Used to pick the high-influence 30% of the paper's mix.
pub fn agent_tracin_scores(train: &[&Record], test: &[&Record], seed: u64) -> Vec<f32> {
    let xs: Vec<Vec<f32>> = train.iter().map(|r| r.numeric_features()).collect();
    let ys: Vec<bool> = train.iter().map(|r| r.label).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    let (model, ckpts) = AgentModel::fit(&xs, &ys, &AgentConfig::default(), &mut rng);
    let train_xy: Vec<(Vec<f32>, bool)> = xs.into_iter().zip(ys).collect();
    let test_xy: Vec<(Vec<f32>, bool)> = test
        .iter()
        .map(|r| (r.numeric_features(), r.label))
        .collect();
    let grads = agent_checkpoint_grads(&model, &ckpts, &train_xy, &test_xy);
    influence_scores(&grads, &TracConfig::tracin(), None)
}

/// Build the paper's instruction mix for one dataset: 70% random balanced
/// records + 30% top-influence records (Eq. 2 + §3.2).
pub fn pruned_mix_records<'a>(
    ds: &Dataset,
    train: &[&'a Record],
    dev: &[&Record],
    cap: usize,
    seed: u64,
) -> Vec<&'a Record> {
    let mut rng = StdRng::seed_from_u64(seed);
    // Influence scored on a class-balanced pool so the Top-K is not
    // dominated by majority-class gradients.
    let pool = balanced_train_records(train, (cap * 2).min(train.len() * 2), &mut rng);
    let scores = agent_tracin_scores(&pool, dev, seed ^ 0xA6E7);
    let ranked = select_top_k(&scores, pool.len());
    let picks = hybrid_mix(
        &MixConfig::paper_default(cap),
        &ranked,
        pool.len(),
        &mut rng,
    );
    let _ = ds;
    picks.into_iter().map(|i| pool[i]).collect()
}

/// Train a ZiGong model from rendered examples, mirroring the paper's
/// two stages:
///
/// 1. **Base pretraining** (simulated): plain next-token LM objective over
///    the corpus with *all* parameters trainable — the stand-in for
///    Mistral 7B's pretraining, which the miniature cannot download.
/// 2. **LoRA SFT**: freeze the base, attach rank-8 adapters on {q, k, v},
///    and fine-tune on the prompt-masked instruction objective.
pub fn train_zigong(
    examples: &[InstructExample],
    cfg: &ZiGongConfig,
    order: TrainOrder,
    name: &str,
) -> (ZiGongModel, TrainReport) {
    cfg.validate();
    let tokenizer = train_tokenizer(examples, cfg.vocab_size);
    let samples = tokenize_all(&tokenizer, examples, cfg.train.max_seq_len);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut model_cfg = cfg.model.clone();
    model_cfg.vocab_size = tokenizer.vocab_size();
    let mut lm = CausalLm::new(model_cfg, &mut rng);
    if cfg.train.pretrain_epochs > 0 {
        let pretrain_samples: Vec<_> = samples.iter().map(to_pretrain_sample).collect();
        let pretrain_cfg = crate::config::TrainConfig {
            epochs: cfg.train.pretrain_epochs,
            max_lr: cfg.train.pretrain_lr,
            min_lr: cfg.train.pretrain_lr * 0.1,
            checkpoint_every: 0,
            ..cfg.train.clone()
        };
        train_sft(
            &lm,
            &pretrain_samples,
            &pretrain_cfg,
            order,
            cfg.seed ^ 0x9BE,
        );
    }
    attach(&mut lm, &cfg.lora, &mut rng);
    let report = train_sft(&lm, &samples, &cfg.train, order, cfg.seed ^ 0x7EA1);
    (
        ZiGongModel::new(lm, tokenizer, cfg.train.max_seq_len, name),
        report,
    )
}

/// Run the full Table 2 benchmark.
pub fn run_table2(opts: &Table2Options) -> Table2 {
    let datasets = zg_data::all_datasets(opts.seed);
    let mut rng = StdRng::seed_from_u64(opts.seed);

    // Per-dataset splits.
    let splits: Vec<(Vec<&Record>, Vec<&Record>)> = datasets.iter().map(|d| d.split(0.2)).collect();

    // ---- ZiGong training data: multi-task 70/30 pruned mix. ----
    let mut zigong_examples: Vec<InstructExample> = Vec::new();
    let mut random_examples: Vec<InstructExample> = Vec::new();
    for (ds, (train, test)) in datasets.iter().zip(&splits) {
        // A slice of the *train* side acts as the influence dev set —
        // never the test records.
        let dev: Vec<&Record> = train.iter().copied().take(40).collect();
        let mixed = pruned_mix_records(
            ds,
            train,
            &dev,
            opts.train_cap,
            opts.seed ^ ds.records.len() as u64,
        );
        zigong_examples.extend(mixed.iter().map(|r| render_classification(ds, r)));
        // Ablation arm: plain balanced random of the same size.
        let plain = balanced_train_records(train, opts.train_cap, &mut rng);
        random_examples.extend(plain.iter().map(|r| render_classification(ds, r)));
        let _ = test;
    }
    // Auxiliary task families (paper Figure 1: QA, sentiment analysis,
    // financial auditing alongside classification).
    if opts.aux_task_cap > 0 {
        let sentiment = zg_data::sentiment_dataset(opts.aux_task_cap, opts.seed ^ 0x5E17);
        zigong_examples.extend(
            sentiment
                .iter()
                .enumerate()
                .map(|(i, e)| zg_instruct::render_sentiment(e, i)),
        );
        let income = zg_data::income_dataset(opts.aux_task_cap, opts.seed ^ 0x14C0);
        zigong_examples.extend(income.iter().map(zg_instruct::render_income));
    }
    let mut order_rng = StdRng::seed_from_u64(opts.seed ^ 0xBEEF);
    zigong_examples.shuffle(&mut order_rng);
    random_examples.shuffle(&mut order_rng);

    let (zigong, report) = train_zigong(
        &zigong_examples,
        &opts.config,
        TrainOrder::Shuffled,
        "ZiGong (measured)",
    );
    let sft_random = {
        let mut cfg = opts.config.clone();
        cfg.seed ^= 0x51;
        train_zigong(
            &random_examples,
            &cfg,
            TrainOrder::Shuffled,
            "SFT-random (measured)",
        )
        .0
    };
    // Zero-shot base model: pretrained (stage 1) but never instruction-
    // tuned — the analogue of prompting a raw base LLM.
    let base = {
        let mut cfg = opts.config.clone();
        cfg.seed ^= 0xBA5E;
        cfg.train.epochs = 0;
        train_zigong(
            &zigong_examples,
            &cfg,
            TrainOrder::Shuffled,
            "Base zero-shot (measured)",
        )
        .0
    };

    // ---- Evaluate. ----
    let mut rows: Vec<Table2Row> = Vec::new();
    let mut eval_sets = Vec::new();
    for (ds, (train, test)) in datasets.iter().zip(&splits) {
        let capped: Vec<&Record> = test.iter().copied().take(opts.test_cap).collect();
        eval_sets.push((ds, train.clone(), eval_items(ds, &capped)));
    }

    if opts.include_replay {
        for (name, points) in paper_table2() {
            if name.starts_with("ZiGong") {
                continue; // our ZiGong row is measured below
            }
            let mut cells = Vec::new();
            for ((ds, _, items), point) in eval_sets.iter().zip(&points) {
                cells.push(point.map(|op| {
                    let mut m =
                        ReplayBaseline::new(name, op, ds.positive_rate(), opts.seed ^ 0xC0DE);
                    evaluate_classifier(&mut m, items)
                }));
            }
            rows.push(Table2Row {
                model: format!("{name} (replay)"),
                measured: false,
                cells,
            });
        }
    }

    // Measured simple baselines.
    let mut cells_majority = Vec::new();
    let mut cells_random = Vec::new();
    let mut cells_expert = Vec::new();
    for (_, train, items) in &eval_sets {
        let mut m = MajorityClass::fit(train);
        cells_majority.push(Some(evaluate_classifier(&mut m, items)));
        let mut r = RandomGuess::new(opts.seed ^ 0xFACE);
        cells_random.push(Some(evaluate_classifier(&mut r, items)));
        let mut e = LogisticExpert::fit(train, opts.seed ^ 0xE49);
        cells_expert.push(Some(evaluate_classifier(&mut e, items)));
    }
    rows.push(Table2Row {
        model: "Majority (measured)".into(),
        measured: true,
        cells: cells_majority,
    });
    rows.push(Table2Row {
        model: "Random (measured)".into(),
        measured: true,
        cells: cells_random,
    });
    rows.push(Table2Row {
        model: "Expert-LR (measured)".into(),
        measured: true,
        cells: cells_expert,
    });

    // Optional int8 path: calibrate frozen base weights on the measured
    // LM rows. `set_quantized` skips trainable weights, so the zero-shot
    // base model (never LoRA-frozen) silently stays exact f32 while the
    // LoRA-trained rows run quantized.
    if opts.quantized {
        for model in [&base, &sft_random, &zigong] {
            model.set_quantized(true);
        }
    }

    // The three measured LM rows dominate benchmark wall-clock; their
    // per-item work is independent, so fan each row's items across the
    // evaluation worker pool (metrics are bit-identical to serial for any
    // worker count).
    for (model, label) in [
        (&base, "Base zero-shot (measured)"),
        (&sft_random, "SFT-random (measured)"),
        (&zigong, "ZiGong (measured)"),
    ] {
        let cells: Vec<Option<CellResult>> = eval_sets
            .iter()
            .map(|(_, _, items)| Some(evaluate_zigong(model, items, opts.eval_workers)))
            .collect();
        rows.push(Table2Row {
            model: label.into(),
            measured: true,
            cells,
        });
    }

    Table2 {
        datasets: datasets.iter().map(|d| d.name.clone()).collect(),
        rows,
        train_report: Some(report),
    }
}

impl Table2 {
    /// Machine-readable JSON of the benchmark (datasets, rows, cells) for
    /// downstream analysis; the training report is summarized, not dumped.
    pub fn to_json(&self) -> String {
        let rows: Vec<serde_json::Value> = self
            .rows
            .iter()
            .map(|row| {
                serde_json::json!({
                    "model": row.model,
                    "measured": row.measured,
                    "cells": row.cells,
                })
            })
            .collect();
        let report = self.train_report.as_ref().map(|r| {
            serde_json::json!({
                "steps": r.steps,
                "first_loss": r.losses.first(),
                "final_loss": r.final_loss(),
                "checkpoints": r.checkpoints.len(),
            })
        });
        serde_json::to_string_pretty(&serde_json::json!({
            "datasets": self.datasets,
            "rows": rows,
            "train_report": report,
        }))
        // INVARIANT: serde_json on in-memory values with string keys cannot fail.
        .expect("benchmark serializes")
    }
}

/// Render the benchmark in the paper's layout: dataset blocks with
/// Acc/F1/Miss rows, one column per model.
pub fn render_table2(table: &Table2) -> String {
    let mut out = String::new();
    let col_w = 26usize;
    out.push_str(&format!("{:<22}{:<8}", "Dataset", "Metric"));
    for row in &table.rows {
        out.push_str(&format!(
            "{:>w$}",
            truncate(&row.model, col_w - 2),
            w = col_w
        ));
    }
    out.push('\n');
    for (di, ds) in table.datasets.iter().enumerate() {
        for (mi, metric) in ["Acc", "F1", "Miss"].iter().enumerate() {
            let label = if mi == 0 { ds.as_str() } else { "" };
            out.push_str(&format!("{label:<22}{metric:<8}"));
            for row in &table.rows {
                let cell = match &row.cells[di] {
                    Some(c) => {
                        let v = match mi {
                            0 => c.eval.acc,
                            1 => c.eval.f1,
                            _ => c.eval.miss,
                        };
                        format!("{v:.3}")
                    }
                    None => "-".to_string(),
                };
                out.push_str(&format!("{cell:>col_w$}"));
            }
            out.push('\n');
        }
    }
    out
}

fn truncate(s: &str, w: usize) -> String {
    if s.len() <= w {
        s.to_string()
    } else {
        format!("{}…", &s[..w - 1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zg_data::german;

    #[test]
    fn balanced_records_are_balanced() {
        let ds = german(500, 1);
        let (train, _) = ds.split(0.2);
        let mut rng = StdRng::seed_from_u64(2);
        let bal = balanced_train_records(&train, 100, &mut rng);
        assert_eq!(bal.len(), 100);
        assert_eq!(bal.iter().filter(|r| r.label).count(), 50);
    }

    #[test]
    fn tracin_scores_align_with_train() {
        let ds = german(300, 3);
        let (train, test) = ds.split(0.2);
        let dev: Vec<&Record> = test.iter().copied().take(20).collect();
        let scores = agent_tracin_scores(&train, &dev, 4);
        assert_eq!(scores.len(), train.len());
        assert!(scores.iter().all(|s| s.is_finite()));
    }

    #[test]
    fn pruned_mix_has_requested_size() {
        let ds = german(400, 5);
        let (train, test) = ds.split(0.2);
        let dev: Vec<&Record> = test.iter().copied().take(20).collect();
        let mix = pruned_mix_records(&ds, &train, &dev, 80, 6);
        assert_eq!(mix.len(), 80);
    }

    #[test]
    fn json_export_contains_rows() {
        let table = Table2 {
            datasets: vec!["German".into()],
            rows: vec![Table2Row {
                model: "X (measured)".into(),
                measured: true,
                cells: vec![None],
            }],
            train_report: None,
        };
        let json = table.to_json();
        assert!(json.contains("\"datasets\""));
        assert!(json.contains("X (measured)"));
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed["rows"][0]["measured"], true);
    }

    #[test]
    fn render_handles_missing_cells() {
        let table = Table2 {
            datasets: vec!["German".into()],
            rows: vec![Table2Row {
                model: "X".into(),
                measured: false,
                cells: vec![None],
            }],
            train_report: None,
        };
        let text = render_table2(&table);
        assert!(text.contains('-'));
        assert!(text.contains("German"));
        assert!(text.contains("Miss"));
    }
}
