//! ZiGong configuration, mirroring the paper's Table 3 ("Configuration
//! Details of ZiGong Model (Mistral 7B Fine-tuned)") with a scaled
//! miniature preset for CPU experiments.

use serde::{Deserialize, Serialize};
use zg_lora::LoraConfig;
use zg_model::ModelConfig;

/// Training-side configuration (Table 3 "Training Configuration").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Peak learning rate. Paper: 1e-5 – 3e-5; the miniature model needs a
    /// proportionally larger rate (fewer parameters, fewer steps).
    pub max_lr: f32,
    /// Floor learning rate for cosine decay.
    pub min_lr: f32,
    /// Micro-batch size. Paper: 32.
    pub batch_size: usize,
    /// Gradient accumulation steps. Paper: 4.
    pub grad_accum: usize,
    /// Training epochs over the instruction set.
    pub epochs: usize,
    /// Linear warmup steps.
    pub warmup_steps: u64,
    /// Global-norm gradient clip.
    pub clip_norm: f32,
    /// Decoupled weight decay.
    pub weight_decay: f32,
    /// Maximum sequence length. Paper: 4096.
    pub max_seq_len: usize,
    /// Store a TracIn checkpoint every this many optimizer steps
    /// (0 = no checkpoints).
    pub checkpoint_every: usize,
    /// Full-parameter pretraining epochs over the corpus before LoRA SFT.
    ///
    /// The paper fine-tunes a *pretrained* Mistral 7B; the miniature has
    /// no pretrained weights to download, so this stage simulates base
    /// pretraining with the plain next-token objective (all parameters
    /// trainable), after which the base is frozen and LoRA SFT begins.
    pub pretrain_epochs: usize,
    /// Peak learning rate for the pretraining stage.
    pub pretrain_lr: f32,
    /// Worker threads for data-parallel gradient accumulation
    /// (`1` = serial, `0` = all available cores).
    ///
    /// Micro-batches within one optimizer step are split across workers,
    /// each holding a bit-exact model replica; per-micro-batch gradients
    /// are reduced on the main thread in micro-batch order, so losses and
    /// final weights are **bit-identical** for any worker count (pinned
    /// by the trainer's parity tests). Both built-in presets default to
    /// `1` (serial): worker replicas cost memory, and on a single-core
    /// host the fast path's wins come from pooling and the fused
    /// optimizer rather than thread parallelism.
    pub train_workers: usize,
}

/// Full ZiGong configuration (Table 3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ZiGongConfig {
    /// Model name.
    pub name: String,
    /// Base architecture (Mistral-style).
    pub model: ModelConfig,
    /// LoRA fine-tuning setup. Paper: r=8, α=16, targets {q, k, v}.
    pub lora: LoraConfig,
    /// Optimizer / schedule.
    pub train: TrainConfig,
    /// Tokenizer vocabulary size target.
    pub vocab_size: usize,
    /// RNG seed for the whole pipeline.
    pub seed: u64,
}

impl ZiGongConfig {
    /// Miniature configuration used by the experiment binaries. Faithful
    /// to Table 3 in every structural choice (LoRA r=8/α=16 on {q,k,v},
    /// AdamW β=(0.9, 0.999), cosine decay, batch 32 = 8×4 accumulation),
    /// scaled in width/depth/sequence length for CPU training.
    pub fn miniature(seed: u64) -> Self {
        let vocab_size = 768;
        ZiGongConfig {
            name: "ZiGong-miniature".to_string(),
            model: ModelConfig::mistral_miniature(vocab_size),
            lora: LoraConfig::default(),
            train: TrainConfig {
                // Tuned for the miniature: ~1000x the paper's 1e-5-3e-5,
                // consistent with the ~1000x smaller parameter count and
                // far fewer steps.
                max_lr: 1e-2,
                min_lr: 1e-3,
                batch_size: 8,
                grad_accum: 4,
                epochs: 3,
                warmup_steps: 10,
                clip_norm: 1.0,
                weight_decay: 0.01,
                max_seq_len: 128,
                checkpoint_every: 20,
                pretrain_epochs: 6,
                pretrain_lr: 1e-2,
                train_workers: 1,
            },
            vocab_size,
            seed,
        }
    }

    /// The paper's published configuration (Table 3, verbatim). Not
    /// runnable on CPU; kept as the reference the miniature is scaled from
    /// and for the `table3` dump.
    pub fn paper_reference() -> Self {
        ZiGongConfig {
            name: "ZiGong".to_string(),
            model: ModelConfig {
                vocab_size: 32_000,
                d_model: 4096,
                n_layers: 32,
                n_heads: 32,
                n_kv_heads: 8,
                d_ff: 14_336,
                max_seq_len: 4096,
                sliding_window: 4096,
                rope_theta: 10_000.0,
                rms_eps: 1e-5,
            },
            lora: LoraConfig::default(),
            train: TrainConfig {
                max_lr: 3e-5,
                min_lr: 1e-5,
                // Table 3: "Batch Size 32 (with gradient accumulation: 4)"
                // = 8 micro-batch x 4 accumulation.
                batch_size: 8,
                grad_accum: 4,
                epochs: 3,
                warmup_steps: 100,
                clip_norm: 1.0,
                weight_decay: 0.01,
                max_seq_len: 4096,
                checkpoint_every: 500,
                pretrain_epochs: 0, // Mistral 7B arrives pretrained
                pretrain_lr: 0.0,
                train_workers: 1,
            },
            vocab_size: 32_000,
            seed: 0,
        }
    }

    /// Validate all nested configuration.
    pub fn validate(&self) {
        self.model.validate();
        assert!(self.train.batch_size >= 1);
        assert!(self.train.grad_accum >= 1);
        assert!(self.train.max_lr >= self.train.min_lr);
        assert!(self.train.max_seq_len <= self.model.max_seq_len);
        assert_eq!(self.model.vocab_size, self.vocab_size);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miniature_valid() {
        ZiGongConfig::miniature(0).validate();
    }

    #[test]
    fn paper_reference_matches_table3() {
        let c = ZiGongConfig::paper_reference();
        assert_eq!(c.model.d_model, 4096);
        assert_eq!(c.model.n_heads, 32);
        assert_eq!(c.model.n_layers, 32);
        assert_eq!(c.model.max_seq_len, 4096);
        assert_eq!(c.lora.rank, 8);
        assert_eq!(c.lora.alpha, 16.0);
        assert_eq!(c.train.batch_size * c.train.grad_accum, 32);
        assert_eq!(c.train.grad_accum, 4);
        assert!(c.train.max_lr <= 3e-5 && c.train.min_lr >= 1e-5);
    }

    #[test]
    fn serde_roundtrip() {
        let c = ZiGongConfig::miniature(7);
        let json = serde_json::to_string_pretty(&c).unwrap();
        let back: ZiGongConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}
