//! Tokenization of instruction examples into training tensors: prompt
//! masking, truncation, padding, and batch assembly.

use zg_instruct::InstructExample;
use zg_tokenizer::{BpeTokenizer, Special};

/// One tokenized SFT sample: `tokens[t]` is the input at position `t`,
/// `labels[t]` is the target predicted *from* position `t` (`<pad>` = 0
/// where masked). Both have equal length ≤ `max_len`.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Input token ids.
    pub tokens: Vec<u32>,
    /// Aligned next-token labels (0 = ignored).
    pub labels: Vec<u32>,
    /// Index into the source example list.
    pub source: usize,
    /// Time period (sequential data), forwarded for TracSeq.
    pub time: Option<u32>,
}

/// Train a BPE tokenizer over the rendered corpus.
pub fn train_tokenizer(examples: &[InstructExample], vocab_size: usize) -> BpeTokenizer {
    let texts: Vec<String> = examples.iter().map(|e| e.full_text()).collect();
    let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
    BpeTokenizer::train(&refs, vocab_size)
}

/// Tokenize one example.
///
/// Layout: `<s> prompt answer </s>`; labels cover the answer tokens and
/// the closing `</s>` only (prompt positions are masked with `<pad>`),
/// which is exactly the SFT objective. When the sequence exceeds
/// `max_len`, the *front* of the prompt is dropped — the question and
/// answer at the tail are what carry the supervision.
pub fn tokenize_example(
    tok: &BpeTokenizer,
    example: &InstructExample,
    source: usize,
    max_len: usize,
) -> Sample {
    assert!(max_len >= 8, "max_len too small to hold question + answer");
    let prompt_ids = tok.encode(&example.prompt);
    let answer_ids = tok.encode(&format!(" {}", example.answer));

    let mut tokens = Vec::with_capacity(prompt_ids.len() + answer_ids.len() + 2);
    tokens.push(Special::Bos.id());
    tokens.extend(&prompt_ids);
    let answer_start = tokens.len();
    tokens.extend(&answer_ids);
    tokens.push(Special::Eos.id());

    // Left-truncate, preserving BOS. When even the answer exceeds the
    // budget, the clamp makes every kept position supervised — the least
    // bad degradation for a pathological answer.
    let (tokens, answer_start) = if tokens.len() > max_len {
        let cut = tokens.len() - max_len + 1; // +1 to re-insert BOS
        let mut t = Vec::with_capacity(max_len);
        t.push(Special::Bos.id());
        t.extend(&tokens[cut..]);
        let start = (answer_start + 1).saturating_sub(cut).max(1);
        (t, start)
    } else {
        (tokens, answer_start)
    };

    // labels[t] = tokens[t + 1] within the answer span (and EOS).
    // labels[t] = tokens[t+1] for positions predicting the answer span.
    let mut labels = vec![Special::Pad.id(); tokens.len()];
    let first_supervised = answer_start.saturating_sub(1);
    labels[first_supervised..tokens.len() - 1].copy_from_slice(&tokens[first_supervised + 1..]);
    Sample {
        tokens,
        labels,
        source,
        time: example.time,
    }
}

/// Tokenize a whole example list.
pub fn tokenize_all(
    tok: &BpeTokenizer,
    examples: &[InstructExample],
    max_len: usize,
) -> Vec<Sample> {
    examples
        .iter()
        .enumerate()
        .map(|(i, e)| tokenize_example(tok, e, i, max_len))
        .collect()
}

/// Convert an SFT sample to a pretraining sample: every next-token
/// position is supervised (labels unmasked), which is the plain language-
/// modeling objective used to simulate base-model pretraining.
pub fn to_pretrain_sample(sample: &Sample) -> Sample {
    let mut labels = vec![Special::Pad.id(); sample.tokens.len()];
    let shifted = sample.tokens.len().saturating_sub(1);
    labels[..shifted].copy_from_slice(&sample.tokens[1..]);
    Sample {
        tokens: sample.tokens.clone(),
        labels,
        source: sample.source,
        time: sample.time,
    }
}

/// Pad a batch of samples to a common length, returning
/// `(tokens, labels, batch, time)` flattened row-major. Padding tokens are
/// `<pad>` with `<pad>` labels (no loss).
pub fn collate(samples: &[&Sample]) -> (Vec<u32>, Vec<u32>, usize, usize) {
    assert!(!samples.is_empty(), "empty batch");
    let time = samples
        .iter()
        .map(|s| s.tokens.len())
        .max()
        // INVARIANT: batch asserted non-empty above.
        .expect("non-empty");
    let batch = samples.len();
    let mut tokens = vec![Special::Pad.id(); batch * time];
    let mut labels = vec![Special::Pad.id(); batch * time];
    for (b, s) in samples.iter().enumerate() {
        tokens[b * time..b * time + s.tokens.len()].copy_from_slice(&s.tokens);
        labels[b * time..b * time + s.labels.len()].copy_from_slice(&s.labels);
    }
    (tokens, labels, batch, time)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example(prompt: &str, answer: &str) -> InstructExample {
        InstructExample {
            prompt: prompt.to_string(),
            answer: answer.to_string(),
            candidates: vec!["No".into(), "Yes".into()],
            dataset: "test".into(),
            record_id: 0,
            label: Some(true),
            time: Some(3),
            user: Some(1),
        }
    }

    fn tok() -> BpeTokenizer {
        BpeTokenizer::byte_level()
    }

    #[test]
    fn answer_tokens_supervised_prompt_masked() {
        let t = tok();
        let ex = example("Q: risky? Answer:", "Yes");
        let s = tokenize_example(&t, &ex, 0, 128);
        // Labels before the answer span are pad.
        let first_live = s.labels.iter().position(|&l| l != 0).expect("live labels");
        // The supervised span decodes to " Yes" + eos.
        let supervised: Vec<u32> = s.labels[first_live..]
            .iter()
            .copied()
            .filter(|&l| l != 0)
            .collect();
        let text = t.decode(&supervised);
        assert_eq!(text.trim(), "Yes");
        assert_eq!(
            *s.labels.last().unwrap(),
            0,
            "final position predicts nothing"
        );
        // The label at the last supervised position is EOS.
        let eos_pos = s.labels.iter().rposition(|&l| l != 0).unwrap();
        assert_eq!(s.labels[eos_pos], Special::Eos.id());
    }

    #[test]
    fn labels_align_with_next_token() {
        let t = tok();
        let ex = example("ab Answer:", "No");
        let s = tokenize_example(&t, &ex, 0, 64);
        for pos in 0..s.tokens.len() - 1 {
            if s.labels[pos] != 0 {
                assert_eq!(s.labels[pos], s.tokens[pos + 1]);
            }
        }
    }

    #[test]
    fn truncation_keeps_answer() {
        let t = tok();
        let long_prompt = format!("{} Answer:", "x".repeat(500));
        let ex = example(&long_prompt, "Yes");
        let s = tokenize_example(&t, &ex, 0, 64);
        assert_eq!(s.tokens.len(), 64);
        assert_eq!(s.tokens[0], Special::Bos.id());
        // The answer must survive truncation.
        let live: Vec<u32> = s.labels.iter().copied().filter(|&l| l != 0).collect();
        assert!(t.decode(&live).contains("Yes"));
    }

    #[test]
    fn oversized_answer_does_not_underflow() {
        // Pathological: the answer alone exceeds the budget. Everything
        // kept becomes supervised instead of panicking.
        let t = tok();
        let ex = example("Q Answer:", &"very long answer ".repeat(10));
        let s = tokenize_example(&t, &ex, 0, 16);
        assert_eq!(s.tokens.len(), 16);
        assert!(s.labels.iter().filter(|&&l| l != 0).count() >= 14);
    }

    #[test]
    fn collate_pads_to_max() {
        let t = tok();
        let a = tokenize_example(&t, &example("short Answer:", "No"), 0, 64);
        let b = tokenize_example(&t, &example("a longer prompt here Answer:", "Yes"), 1, 64);
        let (tokens, labels, batch, time) = collate(&[&a, &b]);
        assert_eq!(batch, 2);
        assert_eq!(time, b.tokens.len());
        assert_eq!(tokens.len(), 2 * time);
        // Padding region of the short row is <pad> with <pad> labels.
        assert_eq!(tokens[a.tokens.len()..time], vec![0; time - a.tokens.len()]);
        assert_eq!(labels[a.tokens.len()..time], vec![0; time - a.tokens.len()]);
    }

    #[test]
    fn time_propagates() {
        let t = tok();
        let s = tokenize_example(&t, &example("p Answer:", "No"), 5, 32);
        assert_eq!(s.time, Some(3));
        assert_eq!(s.source, 5);
    }

    #[test]
    fn pretrain_sample_unmasks_all_positions() {
        let t = tok();
        let s = tokenize_example(&t, &example("abc Answer:", "No"), 0, 64);
        let p = to_pretrain_sample(&s);
        assert_eq!(p.tokens, s.tokens);
        // Every non-final position supervised with the next token.
        for pos in 0..p.tokens.len() - 1 {
            assert_eq!(p.labels[pos], p.tokens[pos + 1]);
        }
        assert_eq!(*p.labels.last().unwrap(), 0);
        // Strictly more supervision than the SFT sample.
        let live_sft = s.labels.iter().filter(|&&l| l != 0).count();
        let live_pre = p.labels.iter().filter(|&&l| l != 0).count();
        assert!(live_pre > live_sft);
    }

    #[test]
    fn trained_tokenizer_compresses_corpus() {
        let exs: Vec<InstructExample> = (0..40)
            .map(|i| example(&format!("applicant number {i} Answer:"), "Yes"))
            .collect();
        let trained = train_tokenizer(&exs, 400);
        let byte = BpeTokenizer::byte_level();
        let s_trained = tokenize_example(&trained, &exs[0], 0, 256);
        let s_byte = tokenize_example(&byte, &exs[0], 0, 256);
        assert!(s_trained.tokens.len() < s_byte.tokens.len());
    }
}
