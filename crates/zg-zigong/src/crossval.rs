//! K-fold cross-validation for credit classifiers, with bootstrap
//! confidence intervals. Miniature-scale test sets make single-split
//! numbers noisy; EXPERIMENTS.md reports fold means and intervals.

use zg_data::{Dataset, Record};
use zg_eval::{bootstrap_ci, Interval};

use crate::evaluator::{eval_items, evaluate_classifier, CellResult, CreditClassifier};

/// Deterministic k-fold assignment: record `i` belongs to fold `i % k`.
/// Returns `(train, test)` record refs for fold `fold`.
pub fn kfold_split(ds: &Dataset, k: usize, fold: usize) -> (Vec<&Record>, Vec<&Record>) {
    assert!(k >= 2, "need at least 2 folds");
    assert!(fold < k, "fold {fold} out of range 0..{k}");
    let mut train = Vec::new();
    let mut test = Vec::new();
    for (i, r) in ds.records.iter().enumerate() {
        if i % k == fold {
            test.push(r);
        } else {
            train.push(r);
        }
    }
    (train, test)
}

/// Cross-validated results: one [`CellResult`] per fold.
pub struct CrossValReport {
    /// Per-fold results.
    pub folds: Vec<CellResult>,
}

impl CrossValReport {
    /// Mean accuracy across folds.
    pub fn mean_acc(&self) -> f64 {
        self.folds.iter().map(|f| f.eval.acc).sum::<f64>() / self.folds.len() as f64
    }

    /// Mean F1 across folds.
    pub fn mean_f1(&self) -> f64 {
        self.folds.iter().map(|f| f.eval.f1).sum::<f64>() / self.folds.len() as f64
    }

    /// Mean KS across folds.
    pub fn mean_ks(&self) -> f64 {
        self.folds.iter().map(|f| f.ks).sum::<f64>() / self.folds.len() as f64
    }

    /// Bootstrap interval over fold accuracies.
    pub fn acc_interval(&self, level: f64, seed: u64) -> Interval {
        let accs: Vec<f64> = self.folds.iter().map(|f| f.eval.acc).collect();
        bootstrap_ci(accs.len(), 500, level, seed, |idx| {
            idx.iter().map(|&i| accs[i]).sum::<f64>() / idx.len() as f64
        })
    }
}

/// Run k-fold cross-validation. `fit` builds a fresh classifier from the
/// fold's training records.
pub fn cross_validate<C: CreditClassifier>(
    ds: &Dataset,
    k: usize,
    mut fit: impl FnMut(&[&Record]) -> C,
) -> CrossValReport {
    let mut folds = Vec::with_capacity(k);
    for fold in 0..k {
        let (train, test) = kfold_split(ds, k, fold);
        let mut model = fit(&train);
        let items = eval_items(ds, &test);
        folds.push(evaluate_classifier(&mut model, &items));
    }
    CrossValReport { folds }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::LogisticExpert;
    use zg_data::german;

    #[test]
    fn folds_partition_exactly() {
        let ds = german(100, 1);
        let mut seen = vec![0usize; 100];
        for fold in 0..5 {
            let (train, test) = kfold_split(&ds, 5, fold);
            assert_eq!(train.len() + test.len(), 100);
            for r in test {
                seen[r.id] += 1;
            }
        }
        assert!(
            seen.iter().all(|&c| c == 1),
            "each record in exactly one test fold"
        );
    }

    #[test]
    fn cross_validation_runs_expert() {
        let ds = german(400, 2);
        let report = cross_validate(&ds, 4, |train| LogisticExpert::fit(train, 3));
        assert_eq!(report.folds.len(), 4);
        assert!(report.mean_acc() > 0.5, "mean acc {}", report.mean_acc());
        assert!(report.mean_ks() > 0.1);
        let ci = report.acc_interval(0.9, 4);
        assert!(ci.lo <= report.mean_acc() + 1e-9 && report.mean_acc() <= ci.hi + 1e-9);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_fold_panics() {
        let ds = german(20, 3);
        kfold_split(&ds, 4, 4);
    }
}
