//! Evaluation harness: every Table 2 model implements
//! [`CreditClassifier`], producing a raw text answer (parsed uniformly,
//! so Miss is measured identically for all models) and a positive-class
//! score (for KS/AUC).

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use zg_data::{Dataset, Record};
use zg_eval::{evaluate_binary, ks_statistic, roc_auc, EvalResult};
use zg_instruct::{parse_binary, render_classification, InstructExample};
use zg_model::CausalLm;
use zg_tokenizer::{BpeTokenizer, Special};

/// One evaluation item: the raw record (for feature-based expert systems)
/// plus its rendered instruction example (for LMs).
pub struct EvalItem<'a> {
    /// Source record.
    pub record: &'a Record,
    /// Rendered prompt/answer pair.
    pub example: InstructExample,
}

/// A model evaluated in the Table 2 benchmark.
pub trait CreditClassifier {
    /// Display name (Table 2 column).
    fn name(&self) -> String;
    /// Raw text answer to the item's prompt.
    fn answer(&mut self, item: &EvalItem) -> String;
    /// Positive-class score in [0, 1] (drives KS / AUC).
    fn score(&mut self, item: &EvalItem) -> f64;
}

/// Metrics for one (model, dataset) cell, extending the paper's Acc/F1/
/// Miss with the KS and AUC used in Figure 2 and the risk-control
/// discussion.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CellResult {
    /// Acc / F1 / Miss.
    pub eval: EvalResult,
    /// KS statistic of the score distribution.
    pub ks: f64,
    /// ROC-AUC of the scores.
    pub auc: f64,
}

/// Build evaluation items from a dataset's records.
pub fn eval_items<'a>(ds: &Dataset, records: &[&'a Record]) -> Vec<EvalItem<'a>> {
    records
        .iter()
        .map(|r| EvalItem {
            record: r,
            example: render_classification(ds, r),
        })
        .collect()
}

/// Evaluate one classifier over items; answers are parsed with the shared
/// Miss-aware parser.
pub fn evaluate_classifier(model: &mut dyn CreditClassifier, items: &[EvalItem<'_>]) -> CellResult {
    assert!(!items.is_empty(), "no evaluation items");
    let mut preds = Vec::with_capacity(items.len());
    let mut labels = Vec::with_capacity(items.len());
    let mut scores = Vec::with_capacity(items.len());
    for item in items {
        let text = model.answer(item);
        let neg = &item.example.candidates[0];
        let pos = &item.example.candidates[1];
        preds.push(parse_binary(&text, neg, pos));
        labels.push(item.record.label);
        scores.push(model.score(item));
    }
    CellResult {
        eval: evaluate_binary(&preds, &labels),
        ks: ks_statistic(&scores, &labels),
        auc: roc_auc(&scores, &labels),
    }
}

/// The trained ZiGong model (LM + tokenizer) as a classifier.
pub struct ZiGongModel {
    /// The fine-tuned causal LM.
    pub lm: CausalLm,
    /// Matching tokenizer.
    pub tokenizer: BpeTokenizer,
    /// Prompt budget (sequences are left-truncated to fit).
    pub max_seq_len: usize,
    /// Display name.
    pub display_name: String,
    rng: StdRng,
}

impl ZiGongModel {
    /// Wrap a trained model.
    pub fn new(lm: CausalLm, tokenizer: BpeTokenizer, max_seq_len: usize, name: &str) -> Self {
        ZiGongModel {
            lm,
            tokenizer,
            max_seq_len,
            display_name: name.to_string(),
            rng: StdRng::seed_from_u64(0xD1D1),
        }
    }

    /// Encode a prompt with BOS, left-truncating to leave `reserve` tokens
    /// of headroom.
    pub fn prompt_ids(&self, prompt: &str, reserve: usize) -> Vec<u32> {
        let ids = self.tokenizer.encode(prompt);
        let budget = self.max_seq_len.saturating_sub(reserve + 1).max(1);
        let start = ids.len().saturating_sub(budget);
        let mut out = Vec::with_capacity(budget + 1);
        out.push(Special::Bos.id());
        out.extend(&ids[start..]);
        out
    }

    /// Greedy generation of an answer string.
    pub fn generate_answer(&mut self, prompt: &str, max_new: usize) -> String {
        let ids = self.prompt_ids(prompt, max_new);
        let out = self
            .lm
            .generate(&ids, max_new, 0.0, Special::Eos.id(), &mut self.rng);
        self.tokenizer.decode(&out)
    }

    /// P(positive answer) normalized over the two candidates — the score
    /// used for KS, mirroring how a risk model outputs a probability.
    pub fn positive_probability(&self, example: &InstructExample) -> f64 {
        let prompt = self.prompt_ids(&example.prompt, 8);
        let neg = self
            .tokenizer
            .encode(&format!(" {}", example.candidates[0]));
        let pos = self
            .tokenizer
            .encode(&format!(" {}", example.candidates[1]));
        let lp_neg = self.lm.score_continuation(&prompt, &neg) as f64;
        let lp_pos = self.lm.score_continuation(&prompt, &pos) as f64;
        // Softmax over the two continuations (average per-token log-prob to
        // remove length bias).
        let a = lp_pos / pos.len() as f64;
        let b = lp_neg / neg.len() as f64;
        let m = a.max(b);
        let (ea, eb) = ((a - m).exp(), (b - m).exp());
        ea / (ea + eb)
    }
}

impl CreditClassifier for ZiGongModel {
    fn name(&self) -> String {
        self.display_name.clone()
    }

    fn answer(&mut self, item: &EvalItem) -> String {
        self.generate_answer(&item.example.prompt, 6)
    }

    fn score(&mut self, item: &EvalItem) -> f64 {
        self.positive_probability(&item.example)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zg_data::german;

    /// A classifier that always answers the negative class.
    struct AlwaysNegative;
    impl CreditClassifier for AlwaysNegative {
        fn name(&self) -> String {
            "AlwaysNegative".into()
        }
        fn answer(&mut self, item: &EvalItem) -> String {
            item.example.candidates[0].clone()
        }
        fn score(&mut self, _item: &EvalItem) -> f64 {
            0.0
        }
    }

    /// An oracle that reads the label (upper bound sanity check).
    struct Oracle;
    impl CreditClassifier for Oracle {
        fn name(&self) -> String {
            "Oracle".into()
        }
        fn answer(&mut self, item: &EvalItem) -> String {
            let i = item.record.label as usize;
            item.example.candidates[i].clone()
        }
        fn score(&mut self, item: &EvalItem) -> f64 {
            item.record.label as u8 as f64
        }
    }

    /// Always answers garbage.
    struct Gibberish;
    impl CreditClassifier for Gibberish {
        fn name(&self) -> String {
            "Gibberish".into()
        }
        fn answer(&mut self, _item: &EvalItem) -> String {
            "zxqw".into()
        }
        fn score(&mut self, _item: &EvalItem) -> f64 {
            0.5
        }
    }

    fn tiny_zigong() -> ZiGongModel {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use zg_model::ModelConfig;
        let mut rng = StdRng::seed_from_u64(1);
        let mut cfg = ModelConfig::mistral_miniature(280);
        cfg.n_layers = 1;
        cfg.d_model = 16;
        cfg.n_heads = 2;
        cfg.n_kv_heads = 1;
        cfg.d_ff = 32;
        let lm = CausalLm::new(cfg, &mut rng);
        ZiGongModel::new(lm, BpeTokenizer::byte_level(), 64, "tiny")
    }

    #[test]
    fn prompt_ids_truncates_from_left() {
        let m = tiny_zigong();
        let long = "x".repeat(500);
        let ids = m.prompt_ids(&long, 8);
        assert!(ids.len() <= 64 - 8);
        assert_eq!(ids[0], Special::Bos.id());
        // Short prompts pass through untruncated.
        let short = m.prompt_ids("hi", 8);
        assert_eq!(short.len(), 3); // BOS + 2 bytes
    }

    #[test]
    fn positive_probability_in_unit_interval() {
        let m = tiny_zigong();
        let ds = german(5, 2);
        let ex = render_classification(&ds, &ds.records[0]);
        let p = m.positive_probability(&ex);
        assert!((0.0..=1.0).contains(&p), "p = {p}");
    }

    #[test]
    fn generate_answer_returns_decodable_text() {
        let mut m = tiny_zigong();
        let out = m.generate_answer("Question: good or bad? Answer:", 4);
        // Untrained model emits arbitrary (but valid) text of bounded length.
        assert!(out.len() <= 4 * 4, "unexpectedly long: {out:?}");
    }

    #[test]
    fn oracle_scores_perfectly() {
        let ds = german(200, 1);
        let (_, test) = ds.split(0.3);
        let items = eval_items(&ds, &test);
        let r = evaluate_classifier(&mut Oracle, &items);
        assert_eq!(r.eval.acc, 1.0);
        assert_eq!(r.eval.f1, 1.0);
        assert_eq!(r.eval.miss, 0.0);
        assert!((r.ks - 1.0).abs() < 1e-9);
        assert!((r.auc - 1.0).abs() < 1e-9);
    }

    #[test]
    fn always_negative_matches_prior() {
        let ds = german(400, 2);
        let (_, test) = ds.split(0.25);
        let items = eval_items(&ds, &test);
        let neg_rate = test.iter().filter(|r| !r.label).count() as f64 / test.len() as f64;
        let r = evaluate_classifier(&mut AlwaysNegative, &items);
        assert!((r.eval.acc - neg_rate).abs() < 1e-9);
        assert_eq!(r.eval.f1, 0.0);
    }

    #[test]
    fn gibberish_is_all_miss() {
        let ds = german(50, 3);
        let (_, test) = ds.split(0.2);
        let items = eval_items(&ds, &test);
        let r = evaluate_classifier(&mut Gibberish, &items);
        assert_eq!(r.eval.miss, 1.0);
        assert_eq!(r.eval.acc, 0.0);
    }

    #[test]
    fn items_align_with_records() {
        let ds = german(30, 4);
        let (_, test) = ds.split(0.3);
        let items = eval_items(&ds, &test);
        for item in &items {
            assert_eq!(item.example.label, Some(item.record.label));
        }
    }
}
