//! Evaluation harness: every Table 2 model implements
//! [`CreditClassifier`], producing a raw text answer (parsed uniformly,
//! so Miss is measured identically for all models) and a positive-class
//! score (for KS/AUC).

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use zg_data::{Dataset, Record};
use zg_eval::{evaluate_binary, ks_statistic, roc_auc, EvalResult, Prediction};
use zg_influence::par_map_init;
use zg_instruct::{parse_binary, render_classification, InstructExample};
use zg_model::{CausalLm, LmSpec};
use zg_tokenizer::{BpeTokenizer, Special};

/// Token headroom reserved for greedy answer decoding: the budget
/// [`ZiGongModel::evaluate_item`], [`CreditClassifier::answer`], and the
/// serving path all use, so their prompt encodings (and therefore their
/// KV prefills) coincide.
pub const ANSWER_TOKENS: usize = 6;

/// Token headroom reserved when scoring the two candidate answers
/// (each candidate is at most this many tokens in every template).
pub const SCORE_RESERVE: usize = 8;

/// One evaluation item: the raw record (for feature-based expert systems)
/// plus its rendered instruction example (for LMs).
pub struct EvalItem<'a> {
    /// Source record.
    pub record: &'a Record,
    /// Rendered prompt/answer pair.
    pub example: InstructExample,
}

/// A model evaluated in the Table 2 benchmark.
pub trait CreditClassifier {
    /// Display name (Table 2 column).
    fn name(&self) -> String;
    /// Raw text answer to the item's prompt.
    fn answer(&mut self, item: &EvalItem) -> String;
    /// Positive-class score in [0, 1] (drives KS / AUC).
    fn score(&mut self, item: &EvalItem) -> f64;
}

/// Metrics for one (model, dataset) cell, extending the paper's Acc/F1/
/// Miss with the KS and AUC used in Figure 2 and the risk-control
/// discussion.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CellResult {
    /// Acc / F1 / Miss.
    pub eval: EvalResult,
    /// KS statistic of the score distribution.
    pub ks: f64,
    /// ROC-AUC of the scores.
    pub auc: f64,
}

/// Build evaluation items from a dataset's records.
pub fn eval_items<'a>(ds: &Dataset, records: &[&'a Record]) -> Vec<EvalItem<'a>> {
    records
        .iter()
        .map(|r| EvalItem {
            record: r,
            example: render_classification(ds, r),
        })
        .collect()
}

/// Evaluate one classifier over items; answers are parsed with the shared
/// Miss-aware parser.
pub fn evaluate_classifier(model: &mut dyn CreditClassifier, items: &[EvalItem<'_>]) -> CellResult {
    assert!(!items.is_empty(), "no evaluation items");
    let mut preds = Vec::with_capacity(items.len());
    let mut labels = Vec::with_capacity(items.len());
    let mut scores = Vec::with_capacity(items.len());
    for item in items {
        let text = model.answer(item);
        let neg = &item.example.candidates[0];
        let pos = &item.example.candidates[1];
        preds.push(parse_binary(&text, neg, pos));
        labels.push(item.record.label);
        scores.push(model.score(item));
    }
    CellResult {
        eval: evaluate_binary(&preds, &labels),
        ks: ks_statistic(&scores, &labels),
        auc: roc_auc(&scores, &labels),
    }
}

/// The trained ZiGong model (LM + tokenizer) as a classifier.
pub struct ZiGongModel {
    /// The fine-tuned causal LM.
    pub lm: CausalLm,
    /// Matching tokenizer.
    pub tokenizer: BpeTokenizer,
    /// Prompt budget (sequences are left-truncated to fit).
    pub max_seq_len: usize,
    /// Display name.
    pub display_name: String,
    rng: StdRng,
}

impl ZiGongModel {
    /// Wrap a trained model.
    pub fn new(lm: CausalLm, tokenizer: BpeTokenizer, max_seq_len: usize, name: &str) -> Self {
        ZiGongModel {
            lm,
            tokenizer,
            max_seq_len,
            display_name: name.to_string(),
            rng: StdRng::seed_from_u64(0xD1D1),
        }
    }

    /// Toggle int8 quantized inference on the underlying LM's frozen
    /// linear layers. Returns how many layers hold a calibration
    /// afterwards (0 when `on == false` or no weight is frozen — e.g. a
    /// base model that was never LoRA-frozen stays in exact f32).
    ///
    /// The flag survives [`ZiGongSpec`] round-trips, so parallel
    /// evaluation workers rebuild quantized replicas bit-identical to the
    /// original (calibration is a pure function of the weights).
    pub fn set_quantized(&self, on: bool) -> usize {
        self.lm.set_quantized(on)
    }

    /// Whether any layer currently holds an int8 calibration.
    pub fn is_quantized(&self) -> bool {
        self.lm.is_quantized()
    }

    /// Encode a prompt with BOS, left-truncating to leave `reserve` tokens
    /// of headroom.
    pub fn prompt_ids(&self, prompt: &str, reserve: usize) -> Vec<u32> {
        let ids = self.tokenizer.encode(prompt);
        let budget = self.max_seq_len.saturating_sub(reserve + 1).max(1);
        let start = ids.len().saturating_sub(budget);
        let mut out = Vec::with_capacity(budget + 1);
        out.push(Special::Bos.id());
        // INVARIANT: start <= ids.len() by the saturating_sub above.
        out.extend(&ids[start..]);
        out
    }

    /// Greedy generation of an answer string.
    pub fn generate_answer(&mut self, prompt: &str, max_new: usize) -> String {
        let ids = self.prompt_ids(prompt, max_new);
        let out = self
            .lm
            .generate(&ids, max_new, 0.0, Special::Eos.id(), &mut self.rng);
        self.tokenizer.decode(&out)
    }

    /// P(positive answer) normalized over the two candidates — the score
    /// used for KS, mirroring how a risk model outputs a probability.
    ///
    /// Both candidates share the prompt, so they are scored through one
    /// prefill via [`CausalLm::score_continuations`] rather than two
    /// independent full passes.
    pub fn positive_probability(&self, example: &InstructExample) -> f64 {
        let prompt = self.prompt_ids(&example.prompt, SCORE_RESERVE);
        let neg = self
            .tokenizer
            .encode(&format!(" {}", example.candidates[0]));
        let pos = self
            .tokenizer
            .encode(&format!(" {}", example.candidates[1]));
        let scores = self.lm.score_continuations(&prompt, &[&neg, &pos]);
        two_way_probability(scores[0] as f64, scores[1] as f64, neg.len(), pos.len())
    }

    /// Answer *and* score one item through a single prompt prefill.
    ///
    /// The answer path reserves [`ANSWER_TOKENS`] tokens of headroom and
    /// the scoring path [`SCORE_RESERVE`]; whenever the prompt fits
    /// untruncated those budgets encode the prompt to identical ids, so
    /// one KV prefill serves the greedy answer decode (on a forked
    /// cache) and both candidate scorings — producing bit-identical text
    /// and score to the independent [`CreditClassifier::answer`] /
    /// [`CreditClassifier::score`] calls. Prompts long enough to
    /// truncate differently per budget fall back to the independent
    /// paths to preserve those exact semantics.
    pub fn evaluate_item(&mut self, item: &EvalItem) -> (String, f64) {
        let _span = zg_trace::span("eval.item");
        // Debug-mode sanitizer: one eval item must not leave autograd tape
        // nodes behind (the eval loop runs thousands of items).
        let _leak = zg_tensor::GraphLeakGuard::new("ZiGongModel::evaluate_item");
        let p_ans = self.prompt_ids(&item.example.prompt, ANSWER_TOKENS);
        let p_score = self.prompt_ids(&item.example.prompt, SCORE_RESERVE);
        if p_ans != p_score {
            return (
                self.generate_answer(&item.example.prompt, ANSWER_TOKENS),
                self.positive_probability(&item.example),
            );
        }
        let neg = self
            .tokenizer
            .encode(&format!(" {}", item.example.candidates[0]));
        let pos = self
            .tokenizer
            .encode(&format!(" {}", item.example.candidates[1]));
        let mut cache = self.lm.new_cache();
        let logits = self.lm.prefill(&p_ans, &mut cache);
        // Greedy decode on a fork — the same sampling as `generate` at
        // temperature 0.
        let mut fork = cache.fork();
        let mut row = logits.clone();
        let mut out = Vec::new();
        for _ in 0..ANSWER_TOKENS {
            let next = zg_model::sample_logits(&row, 0.0, &mut self.rng);
            if next == Special::Eos.id() {
                break;
            }
            out.push(next);
            row = self.lm.step(next, &mut fork);
        }
        let text = self.tokenizer.decode(&out);
        let scores = self
            .lm
            .score_continuations_with_cache(&cache, &logits, &[&neg, &pos]);
        let p = two_way_probability(scores[0] as f64, scores[1] as f64, neg.len(), pos.len());
        (text, p)
    }
}

/// Softmax over two continuation log-probs (average per-token log-prob to
/// remove length bias) — P(positive). Public so the serving engine
/// reproduces the offline score bit-for-bit from the same log-probs.
pub fn two_way_probability(lp_neg: f64, lp_pos: f64, neg_len: usize, pos_len: usize) -> f64 {
    let a = lp_pos / pos_len as f64;
    let b = lp_neg / neg_len as f64;
    let m = a.max(b);
    let (ea, eb) = ((a - m).exp(), (b - m).exp());
    ea / (ea + eb)
}

impl CreditClassifier for ZiGongModel {
    fn name(&self) -> String {
        self.display_name.clone()
    }

    fn answer(&mut self, item: &EvalItem) -> String {
        self.generate_answer(&item.example.prompt, 6)
    }

    fn score(&mut self, item: &EvalItem) -> f64 {
        self.positive_probability(&item.example)
    }
}

/// A `Send` blueprint of a [`ZiGongModel`]: an [`LmSpec`] of the
/// underlying `CausalLm` plus the tokenizer and display metadata.
///
/// `CausalLm` tensors are `Rc`-backed and cannot cross threads, so the
/// parallel evaluator ships this plain-data spec to each worker and
/// rebuilds a private replica there. The model half delegates to
/// [`LmSpec`] (shared with the trainer's data-parallel workers), which
/// restores every parameter — base weights *and* adapter matrices — by
/// name, recreating adapter slots first.
///
/// The spec is `Clone` (plain data throughout) so long-lived engines —
/// zg-serve's persistent worker pool — can hand one copy to each worker
/// thread at spawn time and rebuild replicas without re-snapshotting.
#[derive(Clone)]
pub struct ZiGongSpec {
    lm: LmSpec,
    tokenizer: BpeTokenizer,
    max_seq_len: usize,
    display_name: String,
}

impl ZiGongModel {
    /// Snapshot this model into a thread-shippable [`ZiGongSpec`].
    pub fn spec(&self) -> ZiGongSpec {
        ZiGongSpec {
            lm: LmSpec::snapshot(&self.lm),
            tokenizer: self.tokenizer.clone(),
            max_seq_len: self.max_seq_len,
            display_name: self.display_name.clone(),
        }
    }
}

impl ZiGongSpec {
    /// Rebuild an exact replica of the snapshotted model.
    pub fn build(&self) -> ZiGongModel {
        ZiGongModel::new(
            self.lm.build(),
            self.tokenizer.clone(),
            self.max_seq_len,
            &self.display_name,
        )
    }
}

/// Evaluate a ZiGong model over items with a worker pool (`workers = 0`
/// means all available cores, `1` is serial).
///
/// Items are independent — the model is read-only during evaluation and
/// greedy decoding never consumes the RNG — so the item axis is split
/// into contiguous chunks, each worker evaluates its chunk on a private
/// replica built from [`ZiGongModel::spec`], and outputs are concatenated
/// in chunk order. The resulting prediction/score vectors are *identical*
/// to the serial ones, so every metric (Acc/F1/Miss/KS/AUC) is
/// bit-identical for any worker count (pinned by the determinism test).
pub fn evaluate_zigong(model: &ZiGongModel, items: &[EvalItem<'_>], workers: usize) -> CellResult {
    assert!(!items.is_empty(), "no evaluation items");
    let _span = zg_trace::span_arg("eval.zigong", items.len() as i64);
    zg_trace::counter_add("eval.items", items.len() as f64);
    let workers = if workers == 0 {
        zg_tensor::available_threads()
    } else {
        workers
    };
    let spec = model.spec();
    let per_item: Vec<(Prediction, bool, f64)> = par_map_init(
        items,
        workers,
        || spec.build(),
        |m, item| {
            // Guard on the worker thread: the node counter is thread-local.
            let _leak = zg_tensor::GraphLeakGuard::new("evaluate_zigong item");
            let (text, score) = m.evaluate_item(item);
            let neg = &item.example.candidates[0];
            let pos = &item.example.candidates[1];
            let pred = parse_binary(&text, neg, pos);
            (pred, item.record.label, score)
        },
    );
    zg_trace::gauge_set(
        "tensor.live_tape_nodes",
        zg_tensor::live_tape_nodes() as f64,
    );
    let mut preds = Vec::with_capacity(items.len());
    let mut labels = Vec::with_capacity(items.len());
    let mut scores = Vec::with_capacity(items.len());
    for (p, l, s) in per_item {
        preds.push(p);
        labels.push(l);
        scores.push(s);
    }
    CellResult {
        eval: evaluate_binary(&preds, &labels),
        ks: ks_statistic(&scores, &labels),
        auc: roc_auc(&scores, &labels),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zg_data::german;

    /// A classifier that always answers the negative class.
    struct AlwaysNegative;
    impl CreditClassifier for AlwaysNegative {
        fn name(&self) -> String {
            "AlwaysNegative".into()
        }
        fn answer(&mut self, item: &EvalItem) -> String {
            item.example.candidates[0].clone()
        }
        fn score(&mut self, _item: &EvalItem) -> f64 {
            0.0
        }
    }

    /// An oracle that reads the label (upper bound sanity check).
    struct Oracle;
    impl CreditClassifier for Oracle {
        fn name(&self) -> String {
            "Oracle".into()
        }
        fn answer(&mut self, item: &EvalItem) -> String {
            let i = item.record.label as usize;
            item.example.candidates[i].clone()
        }
        fn score(&mut self, item: &EvalItem) -> f64 {
            item.record.label as u8 as f64
        }
    }

    /// Always answers garbage.
    struct Gibberish;
    impl CreditClassifier for Gibberish {
        fn name(&self) -> String {
            "Gibberish".into()
        }
        fn answer(&mut self, _item: &EvalItem) -> String {
            "zxqw".into()
        }
        fn score(&mut self, _item: &EvalItem) -> f64 {
            0.5
        }
    }

    fn tiny_zigong() -> ZiGongModel {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use zg_model::ModelConfig;
        let mut rng = StdRng::seed_from_u64(1);
        let mut cfg = ModelConfig::mistral_miniature(280);
        cfg.n_layers = 1;
        cfg.d_model = 16;
        cfg.n_heads = 2;
        cfg.n_kv_heads = 1;
        cfg.d_ff = 32;
        let lm = CausalLm::new(cfg, &mut rng);
        ZiGongModel::new(lm, BpeTokenizer::byte_level(), 64, "tiny")
    }

    #[test]
    fn prompt_ids_truncates_from_left() {
        let m = tiny_zigong();
        let long = "x".repeat(500);
        let ids = m.prompt_ids(&long, 8);
        assert!(ids.len() <= 64 - 8);
        assert_eq!(ids[0], Special::Bos.id());
        // Short prompts pass through untruncated.
        let short = m.prompt_ids("hi", 8);
        assert_eq!(short.len(), 3); // BOS + 2 bytes
    }

    #[test]
    fn positive_probability_in_unit_interval() {
        let m = tiny_zigong();
        let ds = german(5, 2);
        let ex = render_classification(&ds, &ds.records[0]);
        let p = m.positive_probability(&ex);
        assert!((0.0..=1.0).contains(&p), "p = {p}");
    }

    #[test]
    fn generate_answer_returns_decodable_text() {
        let mut m = tiny_zigong();
        let out = m.generate_answer("Question: good or bad? Answer:", 4);
        // Untrained model emits arbitrary (but valid) text of bounded length.
        assert!(out.len() <= 4 * 4, "unexpectedly long: {out:?}");
    }

    #[test]
    fn oracle_scores_perfectly() {
        let ds = german(200, 1);
        let (_, test) = ds.split(0.3);
        let items = eval_items(&ds, &test);
        let r = evaluate_classifier(&mut Oracle, &items);
        assert_eq!(r.eval.acc, 1.0);
        assert_eq!(r.eval.f1, 1.0);
        assert_eq!(r.eval.miss, 0.0);
        assert!((r.ks - 1.0).abs() < 1e-9);
        assert!((r.auc - 1.0).abs() < 1e-9);
    }

    #[test]
    fn always_negative_matches_prior() {
        let ds = german(400, 2);
        let (_, test) = ds.split(0.25);
        let items = eval_items(&ds, &test);
        let neg_rate = test.iter().filter(|r| !r.label).count() as f64 / test.len() as f64;
        let r = evaluate_classifier(&mut AlwaysNegative, &items);
        assert!((r.eval.acc - neg_rate).abs() < 1e-9);
        assert_eq!(r.eval.f1, 0.0);
    }

    #[test]
    fn gibberish_is_all_miss() {
        let ds = german(50, 3);
        let (_, test) = ds.split(0.2);
        let items = eval_items(&ds, &test);
        let r = evaluate_classifier(&mut Gibberish, &items);
        assert_eq!(r.eval.miss, 1.0);
        assert_eq!(r.eval.acc, 0.0);
    }

    #[test]
    fn items_align_with_records() {
        let ds = german(30, 4);
        let (_, test) = ds.split(0.3);
        let items = eval_items(&ds, &test);
        for item in &items {
            assert_eq!(item.example.label, Some(item.record.label));
        }
    }

    /// A tiny model with LoRA adapters attached and non-trivial adapter
    /// weights, so the spec round-trip must carry the adapter path too.
    fn tiny_zigong_with_adapters() -> ZiGongModel {
        let mut m = tiny_zigong();
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        zg_lora::attach(&mut m.lm, &zg_lora::LoraConfig::default(), &mut rng);
        for (name, p) in zg_lora::lora_params(&m.lm) {
            if name.ends_with("lora_b") {
                let d: Vec<f32> = (0..p.numel()).map(|i| 0.02 * (i % 5) as f32).collect();
                p.set_data(&d);
            }
        }
        m
    }

    #[test]
    fn spec_roundtrip_rebuilds_exact_replica() {
        let m = tiny_zigong_with_adapters();
        let replica = m.spec().build();
        assert_eq!(replica.display_name, m.display_name);
        assert_eq!(replica.max_seq_len, m.max_seq_len);
        assert_eq!(replica.lm.params().len(), m.lm.params().len());
        // Forward pass on the replica is bit-identical (exact weight copy,
        // identical float-op order), adapters included.
        let a = m.lm.forward(&[1, 9, 4, 2], 1, 4).to_vec();
        let b = replica.lm.forward(&[1, 9, 4, 2], 1, 4).to_vec();
        assert_eq!(a, b, "replica forward must be bit-identical");
    }

    #[test]
    fn eval_loop_is_tape_leak_clean() {
        let mut m = tiny_zigong_with_adapters();
        let ds = german(20, 8);
        let (_, test) = ds.split(0.3);
        let items = eval_items(&ds, &test);
        let before = zg_tensor::live_tape_nodes();
        for item in &items {
            let _ = m.evaluate_item(item);
        }
        assert_eq!(
            zg_tensor::live_tape_nodes(),
            before,
            "serial eval loop must leave the autograd tape at its baseline"
        );
        // The parallel path asserts the same per item via the guards
        // inside evaluate_zigong's worker closure.
        let _ = evaluate_zigong(&m, &items, 2);
    }

    #[test]
    fn parallel_eval_bit_identical_to_serial() {
        let mut m = tiny_zigong_with_adapters();
        let ds = german(60, 8);
        let (_, test) = ds.split(0.3);
        let items = eval_items(&ds, &test);
        let serial = evaluate_classifier(&mut m, &items);
        for workers in [1usize, 2, 3, 5] {
            let par = evaluate_zigong(&m, &items, workers);
            assert_eq!(par.eval.acc, serial.eval.acc, "{workers} workers");
            assert_eq!(par.eval.f1, serial.eval.f1, "{workers} workers");
            assert_eq!(par.eval.miss, serial.eval.miss, "{workers} workers");
            assert_eq!(par.ks, serial.ks, "{workers} workers");
            assert_eq!(par.auc, serial.auc, "{workers} workers");
        }
    }

    /// Quantized evaluation must stay bit-identical across worker counts:
    /// the spec carries the quantized flag, replicas re-calibrate from the
    /// same weights, and int8 accumulation is order-independent.
    #[test]
    fn quantized_parallel_eval_bit_identical_to_serial() {
        let mut m = tiny_zigong_with_adapters();
        assert!(
            m.set_quantized(true) > 0,
            "LoRA-frozen base must calibrate at least one layer"
        );
        let ds = german(60, 9);
        let (_, test) = ds.split(0.3);
        let items = eval_items(&ds, &test);
        let serial = evaluate_classifier(&mut m, &items);
        for workers in [1usize, 2, 3, 5] {
            let par = evaluate_zigong(&m, &items, workers);
            assert_eq!(par.eval.acc, serial.eval.acc, "{workers} workers");
            assert_eq!(par.eval.f1, serial.eval.f1, "{workers} workers");
            assert_eq!(par.eval.miss, serial.eval.miss, "{workers} workers");
            assert_eq!(par.ks, serial.ks, "{workers} workers");
            assert_eq!(par.auc, serial.auc, "{workers} workers");
        }
    }
}
