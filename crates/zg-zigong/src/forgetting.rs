//! Catastrophic-forgetting study (the paper's motivation, §1: LLMs in the
//! financial credit domain "suffer from issues such as hallucinations and
//! knowledge forgetting", citing Luo et al. 2023 — and its contribution 2:
//! the hybrid Top-K + original-data mix "improves model robustness,
//! mitigates hallucinations, and enhances generalization").
//!
//! Protocol:
//! 1. Pretrain a base on the combined corpus; LoRA-SFT on **task A**;
//!    measure A.
//! 2. Branch the model state and continue SFT on **task B** two ways:
//!    - *sequential*: pure task-B data (the forgetting-prone setting);
//!    - *hybrid replay*: task-B data mixed with a fraction of
//!      high-influence task-A samples (Eq. 2 selection), the paper's
//!      mixed-training recipe.
//! 3. Measure task A again in both branches. The A-accuracy drop is the
//!    forgetting; the hybrid branch should forget less.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use zg_data::{Dataset, Record};
use zg_influence::select_top_k;
use zg_instruct::{render_classification, InstructExample};
use zg_lora::attach;
use zg_model::CausalLm;

use crate::benchmark::agent_tracin_scores;
use crate::config::ZiGongConfig;
use crate::corpus::{to_pretrain_sample, tokenize_all, train_tokenizer};
use crate::evaluator::{eval_items, evaluate_classifier, ZiGongModel};
use crate::trainer::{train_sft, TrainOrder};

/// Inputs to the forgetting study: two labeled tasks with their records.
pub struct ForgettingSetup<'a> {
    /// First task (learned first, then at risk of being forgotten).
    pub task_a: &'a Dataset,
    /// Training records of task A.
    pub train_a: Vec<&'a Record>,
    /// Held-out records of task A.
    pub test_a: Vec<&'a Record>,
    /// Second task (learned afterwards).
    pub task_b: &'a Dataset,
    /// Training records of task B.
    pub train_b: Vec<&'a Record>,
    /// Held-out records of task B.
    pub test_b: Vec<&'a Record>,
    /// Fraction of replayed task-A samples in the hybrid arm (paper: 0.3).
    pub replay_fraction: f64,
    /// Pipeline configuration.
    pub config: ZiGongConfig,
}

/// Accuracy of task A and B at each stage of the study.
#[derive(Debug, Clone, Copy)]
pub struct ForgettingResult {
    /// Task-A accuracy right after learning A.
    pub acc_a_initial: f64,
    /// Task-A accuracy after sequential training on B (no replay).
    pub acc_a_sequential: f64,
    /// Task-A accuracy after hybrid training on B + replayed A.
    pub acc_a_hybrid: f64,
    /// Task-B accuracy in the sequential arm.
    pub acc_b_sequential: f64,
    /// Task-B accuracy in the hybrid arm.
    pub acc_b_hybrid: f64,
}

impl ForgettingResult {
    /// Accuracy lost on A without replay.
    pub fn forgetting_sequential(&self) -> f64 {
        self.acc_a_initial - self.acc_a_sequential
    }

    /// Accuracy lost on A with hybrid replay.
    pub fn forgetting_hybrid(&self) -> f64 {
        self.acc_a_initial - self.acc_a_hybrid
    }
}

/// Run the study. Deterministic in `setup.config.seed`.
pub fn run_forgetting_study(setup: &ForgettingSetup<'_>) -> ForgettingResult {
    let cfg = &setup.config;
    cfg.validate();
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xF02);

    let ex_a: Vec<InstructExample> = setup
        .train_a
        .iter()
        .map(|r| render_classification(setup.task_a, r))
        .collect();
    let ex_b: Vec<InstructExample> = setup
        .train_b
        .iter()
        .map(|r| render_classification(setup.task_b, r))
        .collect();

    // Shared tokenizer + pretraining over both corpora (the base model has
    // seen the world; only SFT order varies between arms).
    let mut combined = ex_a.clone();
    combined.extend(ex_b.iter().cloned());
    combined.shuffle(&mut rng);
    let tokenizer = train_tokenizer(&combined, cfg.vocab_size);
    let mut model_cfg = cfg.model.clone();
    model_cfg.vocab_size = tokenizer.vocab_size();
    let mut lm = CausalLm::new(model_cfg, &mut rng);
    if cfg.train.pretrain_epochs > 0 {
        let pre: Vec<_> = tokenize_all(&tokenizer, &combined, cfg.train.max_seq_len)
            .iter()
            .map(to_pretrain_sample)
            .collect();
        let pre_cfg = crate::config::TrainConfig {
            epochs: cfg.train.pretrain_epochs,
            max_lr: cfg.train.pretrain_lr,
            min_lr: cfg.train.pretrain_lr * 0.1,
            checkpoint_every: 0,
            ..cfg.train.clone()
        };
        train_sft(&lm, &pre, &pre_cfg, TrainOrder::Shuffled, cfg.seed ^ 0x11);
    }
    attach(&mut lm, &cfg.lora, &mut rng);

    // Stage 1: learn task A.
    let samples_a = tokenize_all(&tokenizer, &ex_a, cfg.train.max_seq_len);
    let sft_cfg = crate::config::TrainConfig {
        checkpoint_every: 0,
        ..cfg.train.clone()
    };
    train_sft(
        &lm,
        &samples_a,
        &sft_cfg,
        TrainOrder::Shuffled,
        cfg.seed ^ 0x22,
    );
    let after_a = lm.checkpoint();

    let eval_task = |lm: &CausalLm, ds: &Dataset, records: &[&Record]| -> f64 {
        let model_lm = clone_like(lm, &tokenizer, cfg);
        model_lm.restore(&lm.checkpoint());
        let mut wrapped =
            ZiGongModel::new(model_lm, tokenizer.clone(), cfg.train.max_seq_len, "fg");
        let items = eval_items(ds, records);
        evaluate_classifier(&mut wrapped, &items).eval.acc
    };
    let acc_a_initial = eval_task(&lm, setup.task_a, &setup.test_a);

    // Stage 2a: sequential — pure task B.
    let samples_b = tokenize_all(&tokenizer, &ex_b, cfg.train.max_seq_len);
    train_sft(
        &lm,
        &samples_b,
        &sft_cfg,
        TrainOrder::Shuffled,
        cfg.seed ^ 0x33,
    );
    let acc_a_sequential = eval_task(&lm, setup.task_a, &setup.test_a);
    let acc_b_sequential = eval_task(&lm, setup.task_b, &setup.test_b);

    // Stage 2b: hybrid — task B mixed with high-influence replayed A.
    lm.restore(&after_a);
    let dev_a: Vec<&Record> = setup.train_a.iter().copied().take(30).collect();
    let scores = agent_tracin_scores(&setup.train_a, &dev_a, cfg.seed ^ 0x44);
    let n_replay = ((ex_b.len() as f64) * setup.replay_fraction).round() as usize;
    let replay_idx = select_top_k(&scores, n_replay.min(ex_a.len()));
    let mut hybrid: Vec<InstructExample> = ex_b.clone();
    hybrid.extend(replay_idx.iter().map(|&i| ex_a[i].clone()));
    hybrid.shuffle(&mut rng);
    let samples_h = tokenize_all(&tokenizer, &hybrid, cfg.train.max_seq_len);
    train_sft(
        &lm,
        &samples_h,
        &sft_cfg,
        TrainOrder::Shuffled,
        cfg.seed ^ 0x55,
    );
    let acc_a_hybrid = eval_task(&lm, setup.task_a, &setup.test_a);
    let acc_b_hybrid = eval_task(&lm, setup.task_b, &setup.test_b);

    ForgettingResult {
        acc_a_initial,
        acc_a_sequential,
        acc_a_hybrid,
        acc_b_sequential,
        acc_b_hybrid,
    }
}

/// Fresh LM with the same architecture (weights then restored by caller).
fn clone_like(
    lm: &CausalLm,
    tokenizer: &zg_tokenizer::BpeTokenizer,
    cfg: &ZiGongConfig,
) -> CausalLm {
    let mut rng = StdRng::seed_from_u64(0);
    let mut model_cfg = cfg.model.clone();
    model_cfg.vocab_size = tokenizer.vocab_size();
    let mut fresh = CausalLm::new(model_cfg, &mut rng);
    attach(&mut fresh, &cfg.lora, &mut rng);
    let _ = lm;
    fresh
}

#[cfg(test)]
mod tests {
    use super::*;
    use zg_data::{auditing_dataset, german};

    #[test]
    fn study_runs_and_reports_finite_accuracies() {
        let a = german(160, 1);
        let b = auditing_dataset(160, 2);
        let (train_a, test_a) = a.split(0.25);
        let (train_b, test_b) = b.split(0.25);
        let mut cfg = ZiGongConfig::miniature(3);
        cfg.vocab_size = 360;
        cfg.model.vocab_size = 360;
        cfg.model.d_model = 32;
        cfg.model.n_layers = 1;
        cfg.model.n_heads = 2;
        cfg.model.n_kv_heads = 1;
        cfg.model.d_ff = 64;
        cfg.train.max_seq_len = 96;
        cfg.train.epochs = 1;
        cfg.train.pretrain_epochs = 2;
        let setup = ForgettingSetup {
            task_a: &a,
            train_a: train_a.into_iter().take(40).collect(),
            test_a: test_a.into_iter().take(20).collect(),
            task_b: &b,
            train_b: train_b.into_iter().take(40).collect(),
            test_b: test_b.into_iter().take(20).collect(),
            replay_fraction: 0.3,
            config: cfg,
        };
        let r = run_forgetting_study(&setup);
        for v in [
            r.acc_a_initial,
            r.acc_a_sequential,
            r.acc_a_hybrid,
            r.acc_b_sequential,
            r.acc_b_hybrid,
        ] {
            assert!((0.0..=1.0).contains(&v), "accuracy out of range: {v}");
        }
        // Forgetting deltas are well-defined.
        assert!(r.forgetting_sequential().abs() <= 1.0);
        assert!(r.forgetting_hybrid().abs() <= 1.0);
    }
}
