//! # zg-zigong
//!
//! The ZiGong pipeline — the paper's system, end to end:
//!
//! - [`config`]: Table 3 configuration (paper reference + CPU miniature).
//! - [`corpus`]: instruction tokenization with prompt masking.
//! - [`trainer`]: multi-task LoRA SFT with data-parallel gradient
//!   accumulation (bit-identical to serial for any worker count), cosine
//!   decay, clipping, phase profiling, and TracIn checkpoint capture.
//! - [`pruning`]: the data-pruning pipeline — sequential agent training,
//!   TracSeq scoring, Top-K, 70/30 hybrid mixing.
//! - [`evaluator`] / [`baselines`] / [`replay`]: the Table 2 harness with
//!   measured and calibrated-replay columns.
//! - [`benchmark`]: the Table 2 runner and renderer.
//! - [`behavior_card`]: the deployment-style Behavior Card service.

pub mod baselines;
pub mod behavior_card;
pub mod benchmark;
pub mod config;
pub mod corpus;
pub mod crossval;
pub mod evaluator;
pub mod forgetting;
pub mod pruning;
pub mod replay;
pub mod trainer;

pub use baselines::{LogisticExpert, MajorityClass, RandomGuess};
pub use behavior_card::{behavior_card_meta, AuditEntry, BehaviorCardService, Decision};
pub use benchmark::{
    agent_tracin_scores, balanced_train_records, pruned_mix_records, render_table2, run_table2,
    train_zigong, Table2, Table2Options, Table2Row,
};
pub use config::{TrainConfig, ZiGongConfig};
pub use corpus::{
    collate, to_pretrain_sample, tokenize_all, tokenize_example, train_tokenizer, Sample,
};
pub use crossval::{cross_validate, kfold_split, CrossValReport};
pub use evaluator::{
    eval_items, evaluate_classifier, evaluate_zigong, two_way_probability, CellResult,
    CreditClassifier, EvalItem, ZiGongModel, ZiGongSpec, ANSWER_TOKENS, SCORE_RESERVE,
};
pub use forgetting::{run_forgetting_study, ForgettingResult, ForgettingSetup};
pub use pruning::{
    agent_tracseq_scores, agent_tracseq_scores_with, behavior_samples, fit_agent_sequential,
    hybrid_selection, hybrid_selection_with, lm_tracseq_scores, lm_tracseq_scores_with,
    split_behavior_by_user, BehaviorSample,
};
pub use replay::{calibrate, paper_table2, Calibration, OperatingPoint, ReplayBaseline};
pub use trainer::{train_sft, train_sft_profiled, Clock, Profile, TrainOrder, TrainReport};
