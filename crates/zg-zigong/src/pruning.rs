//! The data-pruning pipeline (paper §3.1–3.2): sequential agent-model
//! training with per-period checkpoints, TracSeq scoring, Top-K selection,
//! and the 70/30 hybrid mix — plus the LM-gradient variant for when the
//! gradient subspace should be the fine-tuned model's own.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use zg_data::{Dataset, Record};
use zg_influence::{
    agent_checkpoint_grads_with, hybrid_mix, influence_scores_with, lm_checkpoint_grads,
    lm_checkpoint_grads_with, select_top_k, AgentCheckpoint, AgentModel, CheckpointGrads,
    LmCheckpoint, MixConfig, ParallelConfig, TokenizedSample, TracConfig,
};
use zg_model::CausalLm;

/// A featureized behavior sample: `(numeric features, label, period)`.
pub type BehaviorSample = (Vec<f32>, bool, u32);

/// Train the agent model **chronologically** — one pass per time period,
/// checkpointing after each period so checkpoint `t_i` is literally the
/// model state after learning period `t_i`'s data. This is the alignment
/// that gives TracSeq's `γ^(T−t_i)` its intended meaning on sequential
/// financial data.
pub fn fit_agent_sequential(
    samples: &[BehaviorSample],
    lr: f32,
    l2: f32,
    passes_per_period: usize,
    seed: u64,
) -> (AgentModel, Vec<AgentCheckpoint>) {
    assert!(!samples.is_empty(), "no samples");
    let d = samples[0].0.len();
    assert!(
        samples.iter().all(|(x, _, _)| x.len() == d),
        "ragged features"
    );
    // Standardize over the full history.
    let n = samples.len() as f32;
    let mut mean = vec![0.0f32; d];
    for (x, _, _) in samples {
        for (m, &v) in mean.iter_mut().zip(x) {
            *m += v / n;
        }
    }
    let mut std = vec![0.0f32; d];
    for (x, _, _) in samples {
        for ((s, &v), m) in std.iter_mut().zip(x).zip(&mean) {
            *s += (v - m) * (v - m) / n;
        }
    }
    for s in &mut std {
        *s = s.sqrt().max(1e-6);
    }
    let mut model = AgentModel {
        weights: vec![0.0; d + 1],
        mean,
        std,
    };

    // INVARIANT: callers pass non-empty sample sets (documented precondition).
    let max_period = samples.iter().map(|(_, _, t)| *t).max().expect("non-empty");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut checkpoints = Vec::new();
    for period in 0..=max_period {
        let mut idx: Vec<usize> = samples
            .iter()
            .enumerate()
            .filter(|(_, (_, _, t))| *t == period)
            .map(|(i, _)| i)
            .collect();
        for _ in 0..passes_per_period {
            idx.shuffle(&mut rng);
            for &i in &idx {
                let (x, y, _) = &samples[i];
                let xs = model.standardize(x);
                let g = AgentModel::sample_gradient(&model.weights, &xs, *y);
                for (w, gv) in model.weights.iter_mut().zip(&g) {
                    *w -= lr * (gv + l2 * *w);
                }
            }
        }
        checkpoints.push(AgentCheckpoint {
            weights: model.weights.clone(),
            eta: lr,
            time: period,
        });
    }
    (model, checkpoints)
}

/// TracSeq influence scores for behavior samples via the agent model:
/// sequential fit, per-period checkpoints, analytic gradients, Eq. 1 + 2.
///
/// Runs on all available cores ([`ParallelConfig::auto`]); the parallel
/// engine is bit-identical to serial, so this changes wall-clock only.
pub fn agent_tracseq_scores(
    train: &[BehaviorSample],
    test: &[(Vec<f32>, bool)],
    gamma: f32,
    decay_samples: bool,
    seed: u64,
) -> Vec<f32> {
    agent_tracseq_scores_with(
        train,
        test,
        gamma,
        decay_samples,
        seed,
        &ParallelConfig::auto(),
    )
}

/// [`agent_tracseq_scores`] with explicit engine knobs: worker count and
/// optional gradient sketching. The sequential SGD fit itself stays
/// serial (it is inherently order-dependent and cheap); gradient
/// expansion and scoring fan out across `par.workers`.
pub fn agent_tracseq_scores_with(
    train: &[BehaviorSample],
    test: &[(Vec<f32>, bool)],
    gamma: f32,
    decay_samples: bool,
    seed: u64,
    par: &ParallelConfig,
) -> Vec<f32> {
    let (model, ckpts) = fit_agent_sequential(train, 0.05, 1e-4, 2, seed);
    let train_xy: Vec<(Vec<f32>, bool)> = train.iter().map(|(x, y, _)| (x.clone(), *y)).collect();
    let grads = agent_checkpoint_grads_with(&model, &ckpts, &train_xy, test, par);
    let current_time = train.iter().map(|(_, _, t)| *t).max().unwrap_or(0);
    let times: Vec<u32> = train.iter().map(|(_, _, t)| *t).collect();
    let cfg = TracConfig {
        gamma,
        current_time,
        decay_samples,
    };
    influence_scores_with(&grads, &cfg, Some(&times), par)
}

/// Extract `(features, label, period)` from behavior dataset records.
pub fn behavior_samples(records: &[&Record]) -> Vec<BehaviorSample> {
    records
        .iter()
        .map(|r| {
            (
                r.numeric_features(),
                r.label,
                // INVARIANT: behavior records always carry `time: Some(..)`.
                r.time.expect("behavior records carry a period"),
            )
        })
        .collect()
}

/// LM-gradient TracSeq scores (the heavyweight path): replay stored SFT
/// checkpoints and score in the LoRA subspace.
pub fn lm_tracseq_scores(
    lm: &CausalLm,
    checkpoints: &[LmCheckpoint],
    train: &[TokenizedSample],
    train_times: &[u32],
    test: &[TokenizedSample],
    gamma: f32,
) -> Vec<f32> {
    let grads: Vec<CheckpointGrads> = lm_checkpoint_grads(lm, checkpoints, train, test);
    let current_time = train_times.iter().copied().max().unwrap_or(0);
    let cfg = TracConfig {
        gamma,
        current_time,
        decay_samples: false,
    };
    // Scoring may still fan out even though extraction used the borrowed
    // single-threaded model (`Tensor` is not `Send`).
    influence_scores_with(&grads, &cfg, Some(train_times), &ParallelConfig::auto())
}

/// [`lm_tracseq_scores`] through the parallel engine. Gradient extraction
/// is the dominant cost, and the autograd `Tensor` is not `Send`, so
/// callers supply `make_lm` — a factory producing a fresh model replica
/// (same architecture; weights are overwritten from each checkpoint) —
/// and every worker thread drives its own replica. Exact results are
/// bit-identical to [`lm_tracseq_scores`]; `par.sketch_dim` additionally
/// compresses gradients before scoring.
pub fn lm_tracseq_scores_with<F>(
    make_lm: F,
    checkpoints: &[LmCheckpoint],
    train: &[TokenizedSample],
    train_times: &[u32],
    test: &[TokenizedSample],
    gamma: f32,
    par: &ParallelConfig,
) -> Vec<f32>
where
    F: Fn() -> CausalLm + Sync,
{
    let grads: Vec<CheckpointGrads> =
        lm_checkpoint_grads_with(make_lm, checkpoints, train, test, par);
    let current_time = train_times.iter().copied().max().unwrap_or(0);
    let cfg = TracConfig {
        gamma,
        current_time,
        decay_samples: false,
    };
    influence_scores_with(&grads, &cfg, Some(train_times), par)
}

/// End-to-end selection for a behavior dataset: score train records with
/// agent-TracSeq, rank, and build the paper's 70/30 hybrid mix of
/// `total` sample indices (into `train`).
pub fn hybrid_selection(
    train: &[&Record],
    test: &[&Record],
    gamma: f32,
    total: usize,
    seed: u64,
) -> Vec<usize> {
    hybrid_selection_with(train, test, gamma, total, seed, &ParallelConfig::auto())
}

/// [`hybrid_selection`] with explicit parallel-engine knobs. The random
/// 70% draw depends only on `seed`, so selections are reproducible for
/// any `workers`; sketching perturbs the 30% influence-ranked head but
/// preserves its top-K character (see the rank-preservation test).
pub fn hybrid_selection_with(
    train: &[&Record],
    test: &[&Record],
    gamma: f32,
    total: usize,
    seed: u64,
    par: &ParallelConfig,
) -> Vec<usize> {
    let train_s = behavior_samples(train);
    let test_s: Vec<(Vec<f32>, bool)> = test
        .iter()
        .map(|r| (r.numeric_features(), r.label))
        .collect();
    let scores = agent_tracseq_scores_with(&train_s, &test_s, gamma, false, seed, par);
    let ranked = select_top_k(&scores, train.len());
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED);
    hybrid_mix(
        &MixConfig::paper_default(total),
        &ranked,
        train.len(),
        &mut rng,
    )
}

/// Split a behavior dataset by user into train/test user populations
/// (test users simulate incoming applicants at current time `T`).
pub fn split_behavior_by_user(
    ds: &Dataset,
    test_user_fraction: f64,
) -> (Vec<&Record>, Vec<&Record>) {
    let max_user = ds
        .records
        .iter()
        .filter_map(|r| r.user)
        .max()
        // INVARIANT: behavior datasets always populate `user`.
        .expect("behavior dataset has users");
    let stride = (1.0 / test_user_fraction).round().max(2.0) as usize;
    let is_test = |u: usize| u % stride == stride - 1;
    let max_period = ds.records.iter().filter_map(|r| r.time).max().unwrap_or(0);
    let train: Vec<&Record> = ds
        .records
        .iter()
        // INVARIANT: behavior datasets always populate `user`.
        .filter(|r| !is_test(r.user.expect("user")))
        .collect();
    // Test users are observed at the current period only.
    let test: Vec<&Record> = ds
        .records
        .iter()
        // INVARIANT: behavior datasets always populate `user`.
        .filter(|r| is_test(r.user.expect("user")) && r.time == Some(max_period))
        .collect();
    assert!(max_user > stride, "too few users for this split");
    (train, test)
}

#[cfg(test)]
mod tests {
    use super::*;
    use zg_data::{behavior_sequences, BehaviorConfig};

    fn behavior_ds(n_users: usize, persistence: f32, seed: u64) -> Dataset {
        behavior_sequences(
            &BehaviorConfig {
                n_users,
                periods: 5,
                persistence,
                noise_std: 0.4,
                positive_rate: 0.3,
            },
            seed,
        )
    }

    #[test]
    fn sequential_fit_checkpoints_per_period() {
        let ds = behavior_ds(100, 0.6, 1);
        let (train, _) = split_behavior_by_user(&ds, 0.2);
        let samples = behavior_samples(&train);
        let (_, ckpts) = fit_agent_sequential(&samples, 0.05, 1e-4, 1, 2);
        assert_eq!(ckpts.len(), 5);
        let times: Vec<u32> = ckpts.iter().map(|c| c.time).collect();
        assert_eq!(times, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn split_by_user_no_leakage() {
        let ds = behavior_ds(100, 0.6, 3);
        let (train, test) = split_behavior_by_user(&ds, 0.2);
        let train_users: std::collections::HashSet<usize> =
            train.iter().map(|r| r.user.unwrap()).collect();
        for r in &test {
            assert!(!train_users.contains(&r.user.unwrap()), "user leakage");
            assert_eq!(r.time, Some(4), "test users observed at current time");
        }
    }

    #[test]
    fn tracseq_scores_cover_all_train() {
        let ds = behavior_ds(80, 0.6, 4);
        let (train, test) = split_behavior_by_user(&ds, 0.25);
        let train_s = behavior_samples(&train);
        let test_s: Vec<(Vec<f32>, bool)> = test
            .iter()
            .map(|r| (r.numeric_features(), r.label))
            .collect();
        let scores = agent_tracseq_scores(&train_s, &test_s, 0.9, false, 5);
        assert_eq!(scores.len(), train.len());
        assert!(scores.iter().all(|s| s.is_finite()));
        assert!(scores.iter().any(|&s| s != 0.0));
    }

    #[test]
    fn tracseq_prefers_recent_periods_under_drift() {
        // With strong drift, the mean influence of final-period samples
        // should exceed that of period-0 samples.
        let ds = behavior_ds(300, 0.4, 6);
        let (train, test) = split_behavior_by_user(&ds, 0.2);
        let train_s = behavior_samples(&train);
        let test_s: Vec<(Vec<f32>, bool)> = test
            .iter()
            .map(|r| (r.numeric_features(), r.label))
            .collect();
        let scores = agent_tracseq_scores(&train_s, &test_s, 0.7, false, 7);
        let mean_at = |p: u32| -> f32 {
            let v: Vec<f32> = train_s
                .iter()
                .zip(&scores)
                .filter(|((_, _, t), _)| *t == p)
                .map(|(_, &s)| s)
                .collect();
            v.iter().sum::<f32>() / v.len() as f32
        };
        assert!(
            mean_at(4) > mean_at(0),
            "recent {} vs old {}",
            mean_at(4),
            mean_at(0)
        );
    }

    #[test]
    fn hybrid_selection_size_and_bounds() {
        let ds = behavior_ds(100, 0.6, 8);
        let (train, test) = split_behavior_by_user(&ds, 0.2);
        let sel = hybrid_selection(&train, &test, 0.9, 200, 9);
        assert_eq!(sel.len(), 200);
        assert!(sel.iter().all(|&i| i < train.len()));
    }

    #[test]
    fn top_selected_beat_bottom_selected_for_downstream_fit() {
        // Train a fresh agent on the top-k vs bottom-k halves; the top half
        // should yield better test AUC — the Figure 2 effect, in miniature.
        let ds = behavior_ds(400, 0.5, 10);
        let (train, test) = split_behavior_by_user(&ds, 0.2);
        let train_s = behavior_samples(&train);
        let test_s: Vec<(Vec<f32>, bool)> = test
            .iter()
            .map(|r| (r.numeric_features(), r.label))
            .collect();
        let scores = agent_tracseq_scores(&train_s, &test_s, 0.8, false, 11);
        let k = train_s.len() / 2;
        let auc_of = |idx: &[usize]| -> f64 {
            let xs: Vec<Vec<f32>> = idx.iter().map(|&i| train_s[i].0.clone()).collect();
            let ys: Vec<bool> = idx.iter().map(|&i| train_s[i].1).collect();
            let mut rng = StdRng::seed_from_u64(12);
            let (m, _) = AgentModel::fit(&xs, &ys, &zg_influence::AgentConfig::default(), &mut rng);
            let probs: Vec<f64> = test_s
                .iter()
                .map(|(x, _)| m.predict_proba(x) as f64)
                .collect();
            let labels: Vec<bool> = test_s.iter().map(|(_, y)| *y).collect();
            zg_eval::roc_auc(&probs, &labels)
        };
        let top = zg_influence::select_top_k(&scores, k);
        let bottom = zg_influence::select_bottom_k(&scores, k);
        let (auc_top, auc_bottom) = (auc_of(&top), auc_of(&bottom));
        assert!(
            auc_top > auc_bottom,
            "high-influence subset must beat low-influence: {auc_top:.3} vs {auc_bottom:.3}"
        );
    }
}
