//! Calibrated replay of external Table 2 baselines.
//!
//! The paper compares against ChatGPT, GPT-4, Bloomz, Vicuna, Llama 1/2,
//! Llama2-chat, FinMA, and CALM — closed or GPU-scale models we cannot
//! rerun. To still regenerate the full table, each external column is
//! replayed as a stochastic responder calibrated to its *published*
//! operating point `(Acc, F1, Miss)`: we solve for the per-class
//! correctness rates (TPR, TNR) that reproduce those numbers under the
//! dataset's class prior, then answer accordingly. Rows are clearly
//! labelled `replay` in the harness output; only ZiGong and the ablation
//! columns are measured end-to-end. See DESIGN.md §2.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::evaluator::{CreditClassifier, EvalItem};

/// Published operating point of an external model on one dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperatingPoint {
    /// Reported accuracy.
    pub acc: f64,
    /// Reported F1 (positive class).
    pub f1: f64,
    /// Reported miss rate.
    pub miss: f64,
}

/// Solved response behavior: probability of answering correctly per class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Calibration {
    /// P(answer positive | label positive), among non-missed answers.
    pub tpr: f64,
    /// P(answer negative | label negative), among non-missed answers.
    pub tnr: f64,
}

/// Predicted metrics for a (tpr, tnr) pair under `prior` positives and a
/// `miss` rate, with misses scored as wrong/negative (the harness rule).
fn predicted_metrics(tpr: f64, tnr: f64, prior: f64, miss: f64) -> (f64, f64) {
    let live = 1.0 - miss;
    let acc = live * (prior * tpr + (1.0 - prior) * tnr);
    let tp = live * prior * tpr;
    let fp = live * (1.0 - prior) * (1.0 - tnr);
    let fn_ = prior * (miss + live * (1.0 - tpr));
    let f1 = if tp == 0.0 {
        0.0
    } else {
        2.0 * tp / (2.0 * tp + fp + fn_)
    };
    (acc, f1)
}

/// Solve for (TPR, TNR) reproducing the operating point under `prior`.
/// Grid search — the objective is cheap and the grid is exact enough
/// (±0.002) for table regeneration.
pub fn calibrate(op: &OperatingPoint, prior: f64) -> Calibration {
    assert!((0.0..=1.0).contains(&prior), "prior out of range");
    let mut best = Calibration { tpr: 0.5, tnr: 0.5 };
    let mut best_err = f64::INFINITY;
    let steps = 200;
    for i in 0..=steps {
        let tpr = i as f64 / steps as f64;
        for j in 0..=steps {
            let tnr = j as f64 / steps as f64;
            let (acc, f1) = predicted_metrics(tpr, tnr, prior, op.miss);
            let err = (acc - op.acc).abs() + (f1 - op.f1).abs();
            if err < best_err {
                best_err = err;
                best = Calibration { tpr, tnr };
            }
        }
    }
    best
}

/// A replayed external baseline.
pub struct ReplayBaseline {
    display_name: String,
    op: OperatingPoint,
    cal: Calibration,
    rng: StdRng,
}

impl ReplayBaseline {
    /// Build a replay model for one dataset given the published operating
    /// point and the dataset's positive prior.
    pub fn new(name: &str, op: OperatingPoint, prior: f64, seed: u64) -> Self {
        ReplayBaseline {
            display_name: format!("{name} (replay)"),
            cal: calibrate(&op, prior),
            op,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The calibration in use (for tests/inspection).
    pub fn calibration(&self) -> Calibration {
        self.cal
    }
}

impl CreditClassifier for ReplayBaseline {
    fn name(&self) -> String {
        self.display_name.clone()
    }

    fn answer(&mut self, item: &EvalItem) -> String {
        if self.rng.gen::<f64>() < self.op.miss {
            return "(no parseable answer)".to_string();
        }
        let correct_rate = if item.record.label {
            self.cal.tpr
        } else {
            self.cal.tnr
        };
        let correct = self.rng.gen::<f64>() < correct_rate;
        let predicted_positive = item.record.label == correct;
        item.example.candidates[predicted_positive as usize].clone()
    }

    fn score(&mut self, item: &EvalItem) -> f64 {
        // A replay model has no real score distribution; emit a noisy
        // probability consistent with its answer behavior.
        let base = if item.record.label {
            self.cal.tpr
        } else {
            1.0 - self.cal.tnr
        };
        (base + 0.2 * (self.rng.gen::<f64>() - 0.5)).clamp(0.0, 1.0)
    }
}

/// The published Table 2 operating points: `(model, dataset) -> (Acc, F1,
/// Miss)`, transcribed from the paper. `None` marks the cells the paper
/// leaves blank ("-", Llama2-chat on Credit Card Fraud).
pub fn paper_table2() -> Vec<(&'static str, Vec<Option<OperatingPoint>>)> {
    // Dataset order: German, Australia, Credit Card Fraud, ccFraud, Travel Insurance.
    let op = |acc: f64, f1: f64, miss: f64| Some(OperatingPoint { acc, f1, miss });
    vec![
        (
            "ChatGPT",
            vec![
                op(0.440, 0.410, 0.000),
                op(0.425, 0.257, 0.000),
                op(0.998, 0.998, 0.000),
                op(0.173, 0.214, 0.000),
                op(0.981, 0.975, 0.000),
            ],
        ),
        (
            "GPT4",
            vec![
                op(0.545, 0.513, 0.000),
                op(0.748, 0.746, 0.000),
                op(0.810, 0.878, 0.110),
                op(0.580, 0.587, 0.210),
                op(0.835, 0.897, 0.000),
            ],
        ),
        (
            "Bloomz",
            vec![
                op(0.315, 0.197, 0.110),
                op(0.568, 0.412, 0.000),
                op(0.001, 0.000, 0.000),
                op(0.059, 0.007, 0.000),
                op(0.015, 0.000, 0.000),
            ],
        ),
        (
            "Vicuna",
            vec![
                op(0.590, 0.505, 0.000),
                op(0.489, 0.513, 0.000),
                op(0.999, 0.998, 0.000),
                op(0.608, 0.651, 0.000),
                op(0.015, 0.130, 0.000),
            ],
        ),
        (
            "Llama1",
            vec![
                op(0.660, 0.173, 0.000),
                op(0.432, 0.412, 0.000),
                op(0.823, 0.902, 0.176),
                op(0.941, 0.007, 0.000),
                op(0.000, 0.001, 0.999),
            ],
        ),
        (
            "Llama2",
            vec![
                op(0.660, 0.173, 0.000),
                op(0.432, 0.412, 0.000),
                op(0.999, 0.998, 0.000),
                op(0.941, 0.007, 0.000),
                op(0.015, 0.978, 0.000),
            ],
        ),
        (
            "Llama2-chat",
            vec![
                op(0.475, 0.468, 0.000),
                op(0.432, 0.260, 0.000),
                None, // paper reports "-" with Miss 1.000
                op(0.914, 0.437, 0.000),
                op(0.665, 0.787, 0.000),
            ],
        ),
        (
            "FinMA",
            vec![
                op(0.170, 0.170, 0.110),
                op(0.410, 0.410, 0.806),
                op(0.003, 0.004, 0.000),
                op(0.060, -0.006, 0.891),
                op(0.002, 0.001, 0.000),
            ],
        ),
        (
            "CALM",
            vec![
                op(0.565, 0.535, 0.000),
                op(0.518, 0.492, 0.000),
                op(0.947, 0.971, 0.000),
                op(0.514, 0.627, 0.000),
                op(0.929, 0.950, 0.000),
            ],
        ),
        (
            "ZiGong (paper)",
            vec![
                op(0.590, 0.587, 0.000),
                op(0.779, 0.777, 0.014),
                op(0.998, 0.999, 0.031),
                op(0.987, 0.982, 0.000),
                op(0.884, 0.927, 0.064),
            ],
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::{eval_items, evaluate_classifier};
    use zg_data::german;

    #[test]
    fn calibration_reproduces_operating_point() {
        let op = OperatingPoint {
            acc: 0.7,
            f1: 0.55,
            miss: 0.0,
        };
        let cal = calibrate(&op, 0.3);
        let (acc, f1) = predicted_metrics(cal.tpr, cal.tnr, 0.3, 0.0);
        assert!((acc - 0.7).abs() < 0.02, "acc {acc}");
        assert!((f1 - 0.55).abs() < 0.05, "f1 {f1}");
    }

    #[test]
    fn calibration_with_miss() {
        let op = OperatingPoint {
            acc: 0.5,
            f1: 0.4,
            miss: 0.2,
        };
        let cal = calibrate(&op, 0.4);
        let (acc, f1) = predicted_metrics(cal.tpr, cal.tnr, 0.4, 0.2);
        assert!((acc - 0.5).abs() < 0.03);
        assert!((f1 - 0.4).abs() < 0.06);
    }

    #[test]
    fn replay_hits_published_numbers_on_synthetic_german() {
        // Replaying GPT-4's German row on our synthetic German test split
        // should land near (0.545, 0.513, 0.0).
        let ds = german(4000, 1);
        let (_, test) = ds.split(0.5);
        let items = eval_items(&ds, &test);
        let op = OperatingPoint {
            acc: 0.545,
            f1: 0.513,
            miss: 0.0,
        };
        let mut replay = ReplayBaseline::new("GPT4", op, ds.positive_rate(), 2);
        let r = evaluate_classifier(&mut replay, &items);
        assert!((r.eval.acc - 0.545).abs() < 0.05, "acc {}", r.eval.acc);
        assert!((r.eval.f1 - 0.513).abs() < 0.07, "f1 {}", r.eval.f1);
        assert!(r.eval.miss < 0.01);
    }

    #[test]
    fn replay_miss_rate_respected() {
        let ds = german(2000, 3);
        let (_, test) = ds.split(0.5);
        let items = eval_items(&ds, &test);
        let op = OperatingPoint {
            acc: 0.3,
            f1: 0.2,
            miss: 0.3,
        };
        let mut replay = ReplayBaseline::new("X", op, ds.positive_rate(), 4);
        let r = evaluate_classifier(&mut replay, &items);
        assert!((r.eval.miss - 0.3).abs() < 0.05, "miss {}", r.eval.miss);
    }

    #[test]
    fn table2_has_ten_models_five_datasets() {
        let t = paper_table2();
        assert_eq!(t.len(), 10);
        assert!(t.iter().all(|(_, row)| row.len() == 5));
        // The single blank cell.
        let blanks: usize = t
            .iter()
            .flat_map(|(_, row)| row.iter())
            .filter(|c| c.is_none())
            .count();
        assert_eq!(blanks, 1);
    }

    #[test]
    fn replay_name_is_labelled() {
        let op = OperatingPoint {
            acc: 0.5,
            f1: 0.5,
            miss: 0.0,
        };
        let m = ReplayBaseline::new("ChatGPT", op, 0.3, 1);
        assert!(m.name().contains("replay"));
    }
}
