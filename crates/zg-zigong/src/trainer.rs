//! Multi-task supervised fine-tuning (SFT) of the LoRA-adapted model:
//! micro-batching with gradient accumulation (paper: batch 32 = 8×4),
//! cosine learning-rate decay with warmup, global-norm clipping, and
//! TracIn checkpoint capture.
//!
//! # Training fast path
//!
//! The accumulation window (the `grad_accum` micro-batches between two
//! optimizer steps) is a data-parallel axis: weights are frozen for the
//! whole window, so the per-micro-batch gradients are independent. With
//! [`TrainConfig::train_workers`] `> 1` the trainer ships an [`LmSpec`]
//! blueprint to a persistent worker pool, each worker rebuilds a
//! bit-exact replica (same blueprint→replica pattern as the parallel
//! evaluator), and micro-batches are assigned to workers in contiguous
//! chunks by micro-batch index. Gradients come back per micro-batch and
//! are reduced on the main thread **in ascending micro-batch order** —
//! the same left-fold `((g₀ + g₁) + g₂) …` the serial loop performs via
//! repeated `accumulate_grad` — so losses, gradients, and final weights
//! are bit-identical for any worker count.
//!
//! The optimizer step uses the fused [`AdamW::clip_and_step`] (one
//! gradient traversal instead of three), and every phase of the step is
//! recorded as a `zg-trace` span (`train.collate`, `train.sync`,
//! `train.forward`, `train.backward`, `train.reduce`, `train.optimizer`)
//! — the trainer itself never reads wall time, keeping the library
//! deterministic and testable. When the caller already runs under an
//! ambient [`zg_trace::Tracer`], the trainer's spans and per-worker
//! streams land in that trace; otherwise an injected [`Clock`] spins up
//! a private tracer just long enough to fill the [`Profile`] (the
//! `zg-bench` binaries supply a real clock); with neither, tracing is
//! fully off and all timings stay zero.

use std::sync::mpsc;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::Serialize;
use zg_influence::LmCheckpoint;
use zg_model::{AdamW, CausalLm, CosineSchedule, LmSpec};
use zg_tensor::Tensor;

use crate::config::TrainConfig;
use crate::corpus::{collate, Sample};

/// Sample ordering during training.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrainOrder {
    /// Uniform shuffling each epoch (default for tabular tasks).
    Shuffled,
    /// Ascending time order (sequential behavior data — this is what
    /// aligns checkpoint indices with data periods for TracSeq).
    Chronological,
}

/// An injected monotonic clock returning seconds (re-export of
/// [`zg_trace::Clock`]). The trainer never reads wall time itself; pass
/// `None` for fully deterministic runs (all [`Profile`] timings stay
/// zero unless an ambient tracer is installed) or a real clock from a
/// binary ([`zg_trace::wall_clock`]).
pub type Clock = zg_trace::Clock;

/// Phase-level timing and allocator counters for one training run.
///
/// Timings are in seconds of the injected clock. `collate_s`, `sync_s`,
/// `reduce_s`, and `optimizer_s` are main-thread wall time; `forward_s`
/// and `backward_s` are summed across workers in parallel mode (CPU
/// seconds, not wall), and plain main-thread wall time in serial mode.
/// Pool counters are deltas of the calling thread's buffer-pool stats —
/// worker-thread pools are thread-local and not aggregated here.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct Profile {
    /// Batch assembly: padding/packing micro-batches.
    pub collate_s: f64,
    /// Parallel mode only: broadcasting updated trainable weights to
    /// worker replicas at the start of each accumulation window.
    pub sync_s: f64,
    /// Loss-graph construction (`sft_loss`).
    pub forward_s: f64,
    /// Reverse sweep (`backward`).
    pub backward_s: f64,
    /// In-order gradient reduction of worker results (parallel mode).
    pub reduce_s: f64,
    /// Fused clip + AdamW step, plus checkpoint capture.
    pub optimizer_s: f64,
    /// Micro-batches processed.
    pub microbatches: u64,
    /// Buffer-pool takes on the calling thread over the run.
    pub pool_takes: u64,
    /// Buffer-pool hits on the calling thread over the run.
    pub pool_hits: u64,
}

impl Profile {
    /// Total time across all phases.
    pub fn total_s(&self) -> f64 {
        self.collate_s
            + self.sync_s
            + self.forward_s
            + self.backward_s
            + self.reduce_s
            + self.optimizer_s
    }

    /// Fraction of pool takes served from the free list (0 when the
    /// pool saw no traffic).
    pub fn pool_hit_rate(&self) -> f64 {
        if self.pool_takes == 0 {
            0.0
        } else {
            self.pool_hits as f64 / self.pool_takes as f64
        }
    }
}

/// Outcome of a training run.
pub struct TrainReport {
    /// Mean loss per optimizer step.
    pub losses: Vec<f32>,
    /// Stored checkpoints for influence replay (empty when
    /// `checkpoint_every == 0`).
    pub checkpoints: Vec<LmCheckpoint>,
    /// Total optimizer steps taken.
    pub steps: u64,
    /// Phase timings (all zero unless a clock was injected).
    pub profile: Profile,
}

impl TrainReport {
    /// Mean loss over the final quarter of training (a stable convergence
    /// summary for tests and logs).
    pub fn final_loss(&self) -> f32 {
        if self.losses.is_empty() {
            return f32::NAN;
        }
        let tail = &self.losses[self.losses.len() - self.losses.len().div_ceil(4)..];
        tail.iter().sum::<f32>() / tail.len() as f32
    }
}

/// One collated micro-batch, ready to ship to a worker.
struct MicroJob {
    tokens: Vec<u32>,
    labels: Vec<u32>,
    b: usize,
    t: usize,
    /// Loss scale `1 / grad_accum` so accumulated gradients average.
    scale: f32,
    /// Index within the accumulation window — reduction order key.
    idx: usize,
    /// Max data period in the micro-batch (drives checkpoint `time`).
    data_time: u32,
}

/// Worker input: a weight refresh or a chunk of micro-batches.
enum WorkerMsg {
    /// Updated trainable-parameter data, in `trainable_params()` order.
    Update(Arc<Vec<Vec<f32>>>),
    /// Contiguous chunk of the current window's micro-batches.
    Jobs(Vec<MicroJob>),
    /// Shut down.
    Done,
}

/// Worker output for one micro-batch.
struct WorkerOut {
    idx: usize,
    loss: f32,
    /// Per trainable parameter: the micro-batch gradient, or `None` when
    /// the backward pass never reached it (preserves the optimizer's
    /// "skip params without grads" semantics bit-for-bit).
    grads: Vec<Option<Vec<f32>>>,
}

/// Run SFT over `samples`. The model must already have its trainable set
/// configured (typically LoRA-attached). Deterministic in `seed` — and in
/// `cfg.train_workers`, whose only effect is wall time.
pub fn train_sft(
    lm: &CausalLm,
    samples: &[Sample],
    cfg: &TrainConfig,
    order: TrainOrder,
    seed: u64,
) -> TrainReport {
    train_sft_profiled(lm, samples, cfg, order, seed, None)
}

/// [`train_sft`] with an injected clock for phase timing; pass `None`
/// to skip timing entirely.
pub fn train_sft_profiled(
    lm: &CausalLm,
    samples: &[Sample],
    cfg: &TrainConfig,
    order: TrainOrder,
    seed: u64,
    clock: Option<Clock>,
) -> TrainReport {
    assert!(!samples.is_empty(), "no training samples");
    let params = lm.trainable_params();
    assert!(!params.is_empty(), "model has no trainable parameters");
    let workers = match cfg.train_workers {
        0 => zg_tensor::available_threads(),
        w => w,
    };
    // An ambient tracer installed by the caller wins (the injected clock
    // is ignored); otherwise a clock spins up a private tracer whose only
    // consumer is the Profile delta below. With neither, every span is a
    // no-op and all timings stay zero.
    let own = if zg_trace::enabled() {
        None
    } else {
        clock.map(zg_trace::Tracer::with_clock)
    };
    let root = own.as_ref().map(|t| t.install("train"));
    let before = zg_trace::totals();
    let mut report = if workers <= 1 {
        train_serial(lm, samples, cfg, order, seed, &params)
    } else {
        train_parallel(lm, samples, cfg, order, seed, &params, workers)
    };
    // Worker streams are submitted when the thread scope in
    // `train_parallel` ends, so this delta sees every phase span from
    // every stream, not just the main thread's.
    let delta = zg_trace::totals().delta(&before);
    report.profile.collate_s = delta.span_seconds("train.collate");
    report.profile.sync_s = delta.span_seconds("train.sync");
    report.profile.forward_s = delta.span_seconds("train.forward");
    report.profile.backward_s = delta.span_seconds("train.backward");
    report.profile.reduce_s = delta.span_seconds("train.reduce");
    report.profile.optimizer_s = delta.span_seconds("train.optimizer");
    drop(root);
    report
}

fn train_serial(
    lm: &CausalLm,
    samples: &[Sample],
    cfg: &TrainConfig,
    order: TrainOrder,
    seed: u64,
    params: &[(String, Tensor)],
) -> TrainReport {
    let mut run_window = |jobs: Vec<MicroJob>| -> Vec<f32> {
        jobs.iter()
            .map(|job| {
                let loss;
                let v;
                {
                    let _fwd = zg_trace::span("train.forward");
                    loss = lm.sft_loss(&job.tokens, &job.labels, job.b, job.t, 0);
                    v = loss.item();
                }
                let _bwd = zg_trace::span("train.backward");
                loss.mul_scalar(job.scale).backward();
                v
            })
            .collect()
    };
    train_loop(lm, samples, cfg, order, seed, params, &mut run_window)
}

fn train_parallel(
    lm: &CausalLm,
    samples: &[Sample],
    cfg: &TrainConfig,
    order: TrainOrder,
    seed: u64,
    params: &[(String, Tensor)],
    workers: usize,
) -> TrainReport {
    let spec = LmSpec::snapshot(lm);
    std::thread::scope(|s| {
        let (out_tx, out_rx) = mpsc::channel::<WorkerOut>();
        let mut job_txs: Vec<mpsc::Sender<WorkerMsg>> = Vec::with_capacity(workers);
        for w in 0..workers {
            let (tx, rx) = mpsc::channel::<WorkerMsg>();
            job_txs.push(tx);
            let out_tx = out_tx.clone();
            let spec = &spec;
            // Stream ids are allocated here, on the main thread, in worker
            // order — the merged trace is byte-identical however the
            // worker threads race.
            let stream = zg_trace::fork_stream(&format!("train.worker{w}"));
            s.spawn(move || train_worker(spec, rx, out_tx, stream));
        }
        drop(out_tx);

        let mut run_window = |jobs: Vec<MicroJob>| -> Vec<f32> {
            let n = jobs.len();
            {
                // Broadcast the post-step trainable weights so every replica
                // matches the main model bit-for-bit for this window.
                let _sync = zg_trace::span("train.sync");
                let weights: Arc<Vec<Vec<f32>>> =
                    Arc::new(params.iter().map(|(_, p)| p.data().to_vec()).collect());
                for tx in &job_txs {
                    tx.send(WorkerMsg::Update(weights.clone()))
                        // INVARIANT: workers outlive the training loop; a closed
                        // channel means a worker panicked, which is unrecoverable.
                        .expect("worker disconnected");
                }
                // Contiguous chunks by micro-batch index: deterministic
                // assignment, independent of worker scheduling.
                let per = n.div_ceil(job_txs.len());
                let mut jobs = jobs;
                for tx in &job_txs {
                    if jobs.is_empty() {
                        break;
                    }
                    let rest = jobs.split_off(per.min(jobs.len()));
                    let chunk = std::mem::replace(&mut jobs, rest);
                    tx.send(WorkerMsg::Jobs(chunk))
                        // INVARIANT: see the Update send above.
                        .expect("worker disconnected");
                }
            }

            // Collect all n results, then reduce in ascending micro-batch
            // order — the serial loop's exact accumulation order.
            let mut slots: Vec<Option<WorkerOut>> = (0..n).map(|_| None).collect();
            for _ in 0..n {
                // INVARIANT: each worker sends exactly one result per job;
                // a closed channel means a worker panicked.
                let out = out_rx.recv().expect("training worker disconnected");
                let idx = out.idx;
                slots[idx] = Some(out);
            }
            let _reduce = zg_trace::span("train.reduce");
            let mut losses = Vec::with_capacity(n);
            for slot in slots {
                // INVARIANT: the loop above filled every slot.
                let out = slot.expect("missing micro-batch result");
                losses.push(out.loss);
                for ((_, p), g) in params.iter().zip(&out.grads) {
                    if let Some(g) = g {
                        p.accumulate_grad(g);
                    }
                }
            }
            losses
        };
        let report = train_loop(lm, samples, cfg, order, seed, params, &mut run_window);
        for tx in &job_txs {
            let _ = tx.send(WorkerMsg::Done);
        }
        report
    })
}

/// Worker thread: rebuild a replica from the blueprint, then serve
/// weight refreshes and micro-batch jobs until shutdown.
fn train_worker(
    spec: &LmSpec,
    rx: mpsc::Receiver<WorkerMsg>,
    tx: mpsc::Sender<WorkerOut>,
    stream: Option<zg_trace::StreamHandle>,
) {
    let _stream = stream.map(zg_trace::StreamHandle::install);
    let replica = spec.build();
    let tparams = replica.trainable_params();
    while let Ok(msg) = rx.recv() {
        match msg {
            WorkerMsg::Update(weights) => {
                assert_eq!(
                    tparams.len(),
                    weights.len(),
                    "replica trainable set must match the main model"
                );
                for ((_, p), data) in tparams.iter().zip(weights.iter()) {
                    p.set_data(data);
                }
            }
            WorkerMsg::Jobs(jobs) => {
                for job in jobs {
                    // Debug-mode sanitizer: a micro-batch must not leave
                    // tape nodes or checked-out pooled buffers behind.
                    let _leak = zg_tensor::GraphLeakGuard::new("train_sft worker micro-batch");
                    let loss;
                    let v;
                    {
                        let _fwd = zg_trace::span("train.forward");
                        loss = replica.sft_loss(&job.tokens, &job.labels, job.b, job.t, 0);
                        v = loss.item();
                    }
                    {
                        let _bwd = zg_trace::span("train.backward");
                        loss.mul_scalar(job.scale).backward();
                    }
                    let grads: Vec<Option<Vec<f32>>> = tparams
                        .iter()
                        .map(|(_, p)| {
                            let g = p.with_grad(|g| g.to_vec());
                            p.zero_grad();
                            g
                        })
                        .collect();
                    if tx
                        .send(WorkerOut {
                            idx: job.idx,
                            loss: v,
                            grads,
                        })
                        .is_err()
                    {
                        // Main thread went away (panic unwinding); stop.
                        return;
                    }
                }
            }
            WorkerMsg::Done => break,
        }
    }
}

/// The epoch/step skeleton shared by the serial and parallel engines.
///
/// `run_window` receives one accumulation window of collated micro-batch
/// jobs, leaves their summed (scaled) gradients on `params`, and returns
/// the per-micro-batch losses in window order. Everything that touches
/// the RNG (epoch shuffling) happens here, on the main thread, so the
/// sample order stream is identical for any engine and worker count.
fn train_loop(
    lm: &CausalLm,
    samples: &[Sample],
    cfg: &TrainConfig,
    order: TrainOrder,
    seed: u64,
    params: &[(String, Tensor)],
    run_window: &mut dyn FnMut(Vec<MicroJob>) -> Vec<f32>,
) -> TrainReport {
    let mut rng = StdRng::seed_from_u64(seed);

    let micro_per_epoch = samples.len().div_ceil(cfg.batch_size);
    let steps_per_epoch = micro_per_epoch.div_ceil(cfg.grad_accum).max(1);
    let total_steps = (steps_per_epoch * cfg.epochs) as u64;
    let schedule = CosineSchedule {
        max_lr: cfg.max_lr,
        min_lr: cfg.min_lr,
        warmup_steps: cfg.warmup_steps.min(total_steps / 2),
        total_steps,
    };
    let mut opt = AdamW::new(cfg.max_lr, cfg.weight_decay);

    let mut indices: Vec<usize> = (0..samples.len()).collect();
    if order == TrainOrder::Chronological {
        indices.sort_by_key(|&i| samples[i].time.unwrap_or(0));
    }

    let mut report = TrainReport {
        losses: Vec::new(),
        checkpoints: Vec::new(),
        steps: 0,
        profile: Profile::default(),
    };
    let pool0 = zg_tensor::pool_stats();
    let mut step: u64 = 0;
    for _epoch in 0..cfg.epochs {
        if order == TrainOrder::Shuffled {
            indices.shuffle(&mut rng);
        }
        for window in indices.chunks(cfg.batch_size * cfg.grad_accum) {
            let jobs: Vec<MicroJob> = {
                let _collate = zg_trace::span("train.collate");
                window
                    .chunks(cfg.batch_size)
                    .enumerate()
                    .map(|(idx, chunk)| {
                        let batch: Vec<&Sample> = chunk.iter().map(|&i| &samples[i]).collect();
                        let data_time = batch
                            .iter()
                            .filter_map(|s| s.time)
                            .max()
                            .unwrap_or(step as u32);
                        let (tokens, labels, b, t) = collate(&batch);
                        MicroJob {
                            tokens,
                            labels,
                            b,
                            t,
                            scale: 1.0 / cfg.grad_accum as f32,
                            idx,
                            data_time,
                        }
                    })
                    .collect()
            };
            let n = jobs.len();
            // INVARIANT: every window holds at least one micro-batch.
            let last_time = jobs.last().expect("non-empty window").data_time;

            let losses = run_window(jobs);
            debug_assert_eq!(losses.len(), n);
            report.profile.microbatches += n as u64;
            zg_trace::counter_add("train.microbatches", n as f64);
            let mean_loss = losses.iter().sum::<f32>() / n as f32;

            {
                let _opt = zg_trace::span("train.optimizer");
                opt.lr = schedule.lr_at(step);
                opt.clip_and_step(params, cfg.clip_norm);
                report.losses.push(mean_loss);
                if cfg.checkpoint_every > 0
                    && (step + 1).is_multiple_of(cfg.checkpoint_every as u64)
                {
                    report.checkpoints.push(LmCheckpoint {
                        store: lm.checkpoint(),
                        eta: opt.lr,
                        time: last_time,
                    });
                }
            }
            step += 1;
        }
    }
    let pool1 = zg_tensor::pool_stats();
    report.profile.pool_takes = pool1.takes - pool0.takes;
    report.profile.pool_hits = pool1.hits - pool0.hits;
    if zg_trace::enabled() {
        zg_trace::counter_add("pool.takes", report.profile.pool_takes as f64);
        zg_trace::counter_add("pool.hits", report.profile.pool_hits as f64);
        zg_trace::gauge_set(
            "tensor.live_tape_nodes",
            zg_tensor::live_tape_nodes() as f64,
        );
    }
    report.steps = step;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{tokenize_all, train_tokenizer};
    use zg_instruct::InstructExample;
    use zg_lora::{attach, LoraConfig};
    use zg_model::ModelConfig;

    fn toy_examples(n: usize) -> Vec<InstructExample> {
        // Learnable rule: "risk high" -> Yes, "risk low" -> No.
        (0..n)
            .map(|i| {
                let positive = i % 2 == 0;
                InstructExample {
                    prompt: format!(
                        "risk {}\nQuestion: default? Answer:",
                        if positive { "high" } else { "low" }
                    ),
                    answer: if positive { "Yes" } else { "No" }.to_string(),
                    candidates: vec!["No".into(), "Yes".into()],
                    dataset: "toy".into(),
                    record_id: i,
                    label: Some(positive),
                    time: Some((i % 5) as u32),
                    user: Some(i),
                }
            })
            .collect()
    }

    fn toy_lm(vocab: usize, seed: u64) -> CausalLm {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut cfg = ModelConfig::mistral_miniature(vocab);
        cfg.n_layers = 1;
        cfg.d_model = 32;
        cfg.n_heads = 4;
        cfg.n_kv_heads = 2;
        cfg.d_ff = 64;
        let mut lm = CausalLm::new(cfg, &mut rng);
        attach(&mut lm, &LoraConfig::default(), &mut rng);
        lm
    }

    fn train_cfg() -> TrainConfig {
        TrainConfig {
            max_lr: 5e-3,
            min_lr: 5e-4,
            batch_size: 8,
            grad_accum: 2,
            epochs: 3,
            warmup_steps: 2,
            clip_norm: 1.0,
            weight_decay: 0.0,
            max_seq_len: 64,
            checkpoint_every: 2,
            pretrain_epochs: 0,
            pretrain_lr: 0.0,
            train_workers: 1,
        }
    }

    #[test]
    fn loss_decreases() {
        let examples = toy_examples(64);
        let tok = train_tokenizer(&examples, 320);
        let samples = tokenize_all(&tok, &examples, 64);
        let lm = toy_lm(tok.vocab_size(), 1);
        let cfg = TrainConfig {
            epochs: 10,
            ..train_cfg()
        };
        let report = train_sft(&lm, &samples, &cfg, TrainOrder::Shuffled, 2);
        assert!(report.steps > 0);
        let first = report.losses[0];
        let last = report.final_loss();
        assert!(
            last < first * 0.8,
            "loss failed to decrease: {first} -> {last}"
        );
    }

    #[test]
    fn checkpoints_captured() {
        let examples = toy_examples(32);
        let tok = train_tokenizer(&examples, 300);
        let samples = tokenize_all(&tok, &examples, 64);
        let lm = toy_lm(tok.vocab_size(), 3);
        let report = train_sft(&lm, &samples, &train_cfg(), TrainOrder::Shuffled, 4);
        assert!(!report.checkpoints.is_empty());
        // Snapshots contain the LoRA params.
        let ck = &report.checkpoints[0];
        assert!(ck.store.names().any(|n| n.contains("lora")));
    }

    #[test]
    fn deterministic_given_seed() {
        let examples = toy_examples(24);
        let tok = train_tokenizer(&examples, 300);
        let samples = tokenize_all(&tok, &examples, 64);
        let run = |seed| {
            let lm = toy_lm(tok.vocab_size(), 5);
            train_sft(&lm, &samples, &train_cfg(), TrainOrder::Shuffled, seed).losses
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn chronological_order_sorts_by_time() {
        // With chronological order and checkpoint_every=1, checkpoint times
        // must be non-decreasing data periods.
        let examples = toy_examples(32);
        let tok = train_tokenizer(&examples, 300);
        let samples = tokenize_all(&tok, &examples, 64);
        let lm = toy_lm(tok.vocab_size(), 6);
        let cfg = TrainConfig {
            checkpoint_every: 1,
            epochs: 1,
            ..train_cfg()
        };
        let report = train_sft(&lm, &samples, &cfg, TrainOrder::Chronological, 7);
        let times: Vec<u32> = report.checkpoints.iter().map(|c| c.time).collect();
        let mut sorted = times.clone();
        sorted.sort_unstable();
        assert_eq!(times, sorted, "checkpoint times must ascend: {times:?}");
    }

    #[test]
    fn training_actually_teaches_the_rule() {
        let examples = toy_examples(64);
        let tok = train_tokenizer(&examples, 320);
        let samples = tokenize_all(&tok, &examples, 64);
        let lm = toy_lm(tok.vocab_size(), 8);
        let cfg = TrainConfig {
            epochs: 8,
            ..train_cfg()
        };
        train_sft(&lm, &samples, &cfg, TrainOrder::Shuffled, 9);
        // Score "Yes" vs "No" continuations for a held-out high-risk prompt.
        let prompt = {
            let mut ids = vec![zg_tokenizer::Special::Bos.id()];
            ids.extend(tok.encode("risk high\nQuestion: default? Answer:"));
            ids
        };
        let yes = tok.encode(" Yes");
        let no = tok.encode(" No");
        let s_yes = lm.score_continuation(&prompt, &yes);
        let s_no = lm.score_continuation(&prompt, &no);
        assert!(
            s_yes > s_no,
            "model failed to learn the toy rule: Yes={s_yes} No={s_no}"
        );
    }

    #[test]
    fn grad_accum_changes_nothing_structurally() {
        // Same data, accum 1 vs 2: both must converge (not equality, just
        // sanity that accumulation path works).
        let examples = toy_examples(32);
        let tok = train_tokenizer(&examples, 300);
        let samples = tokenize_all(&tok, &examples, 64);
        for accum in [1usize, 2, 4] {
            let lm = toy_lm(tok.vocab_size(), 11);
            let cfg = TrainConfig {
                grad_accum: accum,
                ..train_cfg()
            };
            let report = train_sft(&lm, &samples, &cfg, TrainOrder::Shuffled, 12);
            assert!(report.final_loss().is_finite());
        }
    }

    #[test]
    fn parallel_training_bit_identical_to_serial() {
        // The tentpole guarantee: losses AND final weights are exactly
        // (f64/bitwise) equal for any worker count.
        let examples = toy_examples(24);
        let tok = train_tokenizer(&examples, 300);
        let samples = tokenize_all(&tok, &examples, 64);
        let run = |workers: usize| {
            let lm = toy_lm(tok.vocab_size(), 5);
            let cfg = TrainConfig {
                train_workers: workers,
                ..train_cfg()
            };
            let report = train_sft(&lm, &samples, &cfg, TrainOrder::Shuffled, 9);
            let weights: Vec<Vec<f32>> = lm
                .trainable_params()
                .into_iter()
                .map(|(_, p)| p.data().to_vec())
                .collect();
            (report.losses, weights, report.steps)
        };
        let (base_losses, base_weights, base_steps) = run(1);
        for workers in [2usize, 3, 5] {
            let (losses, weights, steps) = run(workers);
            assert_eq!(steps, base_steps);
            let exact: Vec<f64> = losses.iter().map(|&l| l as f64).collect();
            let base_exact: Vec<f64> = base_losses.iter().map(|&l| l as f64).collect();
            assert_eq!(
                exact, base_exact,
                "losses diverged from serial at {workers} workers"
            );
            assert_eq!(
                weights, base_weights,
                "final weights diverged from serial at {workers} workers"
            );
        }
    }

    #[test]
    fn profiler_counts_phases_with_injected_clock() {
        let examples = toy_examples(16);
        let tok = train_tokenizer(&examples, 300);
        let samples = tokenize_all(&tok, &examples, 64);
        let lm = toy_lm(tok.vocab_size(), 13);
        // A deterministic fake clock: each read advances by 1 "second",
        // so every span accrues a positive duration.
        let cfg = TrainConfig {
            epochs: 1,
            ..train_cfg()
        };
        let report = train_sft_profiled(
            &lm,
            &samples,
            &cfg,
            TrainOrder::Shuffled,
            14,
            Some(zg_trace::tick_clock()),
        );
        let p = report.profile;
        assert!(p.collate_s > 0.0 && p.forward_s > 0.0 && p.backward_s > 0.0);
        assert!(p.optimizer_s > 0.0);
        assert_eq!(p.microbatches, 2); // 16 samples / batch 8
        assert!(p.total_s() > 0.0);
        // Serial run: no sync/reduce phases.
        assert_eq!(p.sync_s, 0.0);
        assert_eq!(p.reduce_s, 0.0);
        // The training loop recycles backward scratch through the pool.
        assert!(p.pool_takes > 0, "pool saw no traffic");
        assert!(p.pool_hit_rate() > 0.0, "pool never hit");
        // Without a clock (and no ambient tracer) all timings stay zero.
        let lm2 = toy_lm(tok.vocab_size(), 13);
        let silent = train_sft(&lm2, &samples, &cfg, TrainOrder::Shuffled, 14);
        assert_eq!(silent.profile.total_s(), 0.0);
    }

    #[test]
    fn ambient_tracer_captures_training_spans_and_worker_streams() {
        let examples = toy_examples(16);
        let tok = train_tokenizer(&examples, 300);
        let samples = tokenize_all(&tok, &examples, 64);
        let lm = toy_lm(tok.vocab_size(), 17);
        let cfg = TrainConfig {
            epochs: 1,
            train_workers: 2,
            ..train_cfg()
        };
        let tracer = zg_trace::Tracer::with_clock(zg_trace::tick_clock());
        let report = {
            let _root = tracer.install("test");
            // No clock injected: the ambient tracer still fills the profile.
            train_sft(&lm, &samples, &cfg, TrainOrder::Shuffled, 18)
        };
        let p = report.profile;
        assert!(p.collate_s > 0.0 && p.optimizer_s > 0.0);
        assert!(p.sync_s > 0.0 && p.reduce_s > 0.0, "parallel phases timed");
        assert!(
            p.forward_s > 0.0 && p.backward_s > 0.0,
            "worker spans folded in"
        );
        let trace = tracer.finish();
        assert_eq!(trace.streams.len(), 3, "root + one stream per worker");
        assert_eq!(trace.streams[1].label, "train.worker0");
        assert_eq!(trace.streams[2].label, "train.worker1");
        let totals = trace.span_totals();
        assert_eq!(
            totals["train.forward"].count, p.microbatches,
            "one forward span per micro-batch"
        );
        let counters = trace.counters();
        assert_eq!(counters["train.microbatches"], p.microbatches as f64);
        assert_eq!(counters["pool.takes"], p.pool_takes as f64);
    }

    #[test]
    fn parallel_run_leaves_no_pooled_buffers_checked_out() {
        let examples = toy_examples(16);
        let tok = train_tokenizer(&examples, 300);
        let samples = tokenize_all(&tok, &examples, 64);
        let lm = toy_lm(tok.vocab_size(), 15);
        let cfg = TrainConfig {
            epochs: 1,
            train_workers: 2,
            ..train_cfg()
        };
        let before = zg_tensor::pool_stats().checked_out;
        let report = train_sft(&lm, &samples, &cfg, TrainOrder::Shuffled, 16);
        assert!(report.steps > 0);
        let after = zg_tensor::pool_stats().checked_out;
        assert_eq!(
            before, after,
            "training leaked checked-out pooled buffers on the main thread"
        );
    }
}
