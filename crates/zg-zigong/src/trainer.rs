//! Multi-task supervised fine-tuning (SFT) of the LoRA-adapted model:
//! micro-batching with gradient accumulation (paper: batch 32 = 8×4),
//! cosine learning-rate decay with warmup, global-norm clipping, and
//! TracIn checkpoint capture.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use zg_influence::LmCheckpoint;
use zg_model::{clip_grad_norm, AdamW, CausalLm, CosineSchedule};

use crate::config::TrainConfig;
use crate::corpus::{collate, Sample};

/// Sample ordering during training.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrainOrder {
    /// Uniform shuffling each epoch (default for tabular tasks).
    Shuffled,
    /// Ascending time order (sequential behavior data — this is what
    /// aligns checkpoint indices with data periods for TracSeq).
    Chronological,
}

/// Outcome of a training run.
pub struct TrainReport {
    /// Mean loss per optimizer step.
    pub losses: Vec<f32>,
    /// Stored checkpoints for influence replay (empty when
    /// `checkpoint_every == 0`).
    pub checkpoints: Vec<LmCheckpoint>,
    /// Total optimizer steps taken.
    pub steps: u64,
}

impl TrainReport {
    /// Mean loss over the final quarter of training (a stable convergence
    /// summary for tests and logs).
    pub fn final_loss(&self) -> f32 {
        if self.losses.is_empty() {
            return f32::NAN;
        }
        let tail = &self.losses[self.losses.len() - self.losses.len().div_ceil(4)..];
        tail.iter().sum::<f32>() / tail.len() as f32
    }
}

/// Run SFT over `samples`. The model must already have its trainable set
/// configured (typically LoRA-attached). Deterministic in `seed`.
pub fn train_sft(
    lm: &CausalLm,
    samples: &[Sample],
    cfg: &TrainConfig,
    order: TrainOrder,
    seed: u64,
) -> TrainReport {
    assert!(!samples.is_empty(), "no training samples");
    let params = lm.trainable_params();
    assert!(!params.is_empty(), "model has no trainable parameters");
    let mut rng = StdRng::seed_from_u64(seed);

    let micro_per_epoch = samples.len().div_ceil(cfg.batch_size);
    let steps_per_epoch = micro_per_epoch.div_ceil(cfg.grad_accum).max(1);
    let total_steps = (steps_per_epoch * cfg.epochs) as u64;
    let schedule = CosineSchedule {
        max_lr: cfg.max_lr,
        min_lr: cfg.min_lr,
        warmup_steps: cfg.warmup_steps.min(total_steps / 2),
        total_steps,
    };
    let mut opt = AdamW::new(cfg.max_lr, cfg.weight_decay);

    let mut indices: Vec<usize> = (0..samples.len()).collect();
    if order == TrainOrder::Chronological {
        indices.sort_by_key(|&i| samples[i].time.unwrap_or(0));
    }

    let mut report = TrainReport {
        losses: Vec::new(),
        checkpoints: Vec::new(),
        steps: 0,
    };
    let mut step: u64 = 0;
    for _epoch in 0..cfg.epochs {
        if order == TrainOrder::Shuffled {
            indices.shuffle(&mut rng);
        }
        let mut micro_in_step = 0usize;
        let mut loss_acc = 0.0f32;
        let mut last_time: u32 = 0;
        for chunk in indices.chunks(cfg.batch_size) {
            let batch: Vec<&Sample> = chunk.iter().map(|&i| &samples[i]).collect();
            last_time = batch
                .iter()
                .filter_map(|s| s.time)
                .max()
                .unwrap_or(step as u32);
            let (tokens, labels, b, t) = collate(&batch);
            let loss = lm.sft_loss(&tokens, &labels, b, t, 0);
            loss_acc += loss.item();
            // Scale so accumulated gradients average over micro-batches.
            loss.mul_scalar(1.0 / cfg.grad_accum as f32).backward();
            micro_in_step += 1;
            if micro_in_step == cfg.grad_accum {
                optimizer_step(
                    lm,
                    &params,
                    &mut opt,
                    &schedule,
                    cfg,
                    step,
                    last_time,
                    loss_acc / micro_in_step as f32,
                    &mut report,
                );
                step += 1;
                micro_in_step = 0;
                loss_acc = 0.0;
            }
        }
        if micro_in_step > 0 {
            optimizer_step(
                lm,
                &params,
                &mut opt,
                &schedule,
                cfg,
                step,
                last_time,
                loss_acc / micro_in_step as f32,
                &mut report,
            );
            step += 1;
        }
    }
    report.steps = step;
    report
}

#[allow(clippy::too_many_arguments)]
fn optimizer_step(
    lm: &CausalLm,
    params: &[(String, zg_tensor::Tensor)],
    opt: &mut AdamW,
    schedule: &CosineSchedule,
    cfg: &TrainConfig,
    step: u64,
    data_time: u32,
    mean_loss: f32,
    report: &mut TrainReport,
) {
    clip_grad_norm(params, cfg.clip_norm);
    opt.lr = schedule.lr_at(step);
    opt.step(params);
    report.losses.push(mean_loss);
    if cfg.checkpoint_every > 0 && (step + 1).is_multiple_of(cfg.checkpoint_every as u64) {
        report.checkpoints.push(LmCheckpoint {
            store: lm.checkpoint(),
            eta: opt.lr,
            time: data_time,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{tokenize_all, train_tokenizer};
    use zg_instruct::InstructExample;
    use zg_lora::{attach, LoraConfig};
    use zg_model::ModelConfig;

    fn toy_examples(n: usize) -> Vec<InstructExample> {
        // Learnable rule: "risk high" -> Yes, "risk low" -> No.
        (0..n)
            .map(|i| {
                let positive = i % 2 == 0;
                InstructExample {
                    prompt: format!(
                        "risk {}\nQuestion: default? Answer:",
                        if positive { "high" } else { "low" }
                    ),
                    answer: if positive { "Yes" } else { "No" }.to_string(),
                    candidates: vec!["No".into(), "Yes".into()],
                    dataset: "toy".into(),
                    record_id: i,
                    label: Some(positive),
                    time: Some((i % 5) as u32),
                    user: Some(i),
                }
            })
            .collect()
    }

    fn toy_lm(vocab: usize, seed: u64) -> CausalLm {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut cfg = ModelConfig::mistral_miniature(vocab);
        cfg.n_layers = 1;
        cfg.d_model = 32;
        cfg.n_heads = 4;
        cfg.n_kv_heads = 2;
        cfg.d_ff = 64;
        let mut lm = CausalLm::new(cfg, &mut rng);
        attach(&mut lm, &LoraConfig::default(), &mut rng);
        lm
    }

    fn train_cfg() -> TrainConfig {
        TrainConfig {
            max_lr: 5e-3,
            min_lr: 5e-4,
            batch_size: 8,
            grad_accum: 2,
            epochs: 3,
            warmup_steps: 2,
            clip_norm: 1.0,
            weight_decay: 0.0,
            max_seq_len: 64,
            checkpoint_every: 2,
            pretrain_epochs: 0,
            pretrain_lr: 0.0,
        }
    }

    #[test]
    fn loss_decreases() {
        let examples = toy_examples(64);
        let tok = train_tokenizer(&examples, 320);
        let samples = tokenize_all(&tok, &examples, 64);
        let lm = toy_lm(tok.vocab_size(), 1);
        let cfg = TrainConfig {
            epochs: 10,
            ..train_cfg()
        };
        let report = train_sft(&lm, &samples, &cfg, TrainOrder::Shuffled, 2);
        assert!(report.steps > 0);
        let first = report.losses[0];
        let last = report.final_loss();
        assert!(
            last < first * 0.8,
            "loss failed to decrease: {first} -> {last}"
        );
    }

    #[test]
    fn checkpoints_captured() {
        let examples = toy_examples(32);
        let tok = train_tokenizer(&examples, 300);
        let samples = tokenize_all(&tok, &examples, 64);
        let lm = toy_lm(tok.vocab_size(), 3);
        let report = train_sft(&lm, &samples, &train_cfg(), TrainOrder::Shuffled, 4);
        assert!(!report.checkpoints.is_empty());
        // Snapshots contain the LoRA params.
        let ck = &report.checkpoints[0];
        assert!(ck.store.names().any(|n| n.contains("lora")));
    }

    #[test]
    fn deterministic_given_seed() {
        let examples = toy_examples(24);
        let tok = train_tokenizer(&examples, 300);
        let samples = tokenize_all(&tok, &examples, 64);
        let run = |seed| {
            let lm = toy_lm(tok.vocab_size(), 5);
            train_sft(&lm, &samples, &train_cfg(), TrainOrder::Shuffled, seed).losses
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn chronological_order_sorts_by_time() {
        // With chronological order and checkpoint_every=1, checkpoint times
        // must be non-decreasing data periods.
        let examples = toy_examples(32);
        let tok = train_tokenizer(&examples, 300);
        let samples = tokenize_all(&tok, &examples, 64);
        let lm = toy_lm(tok.vocab_size(), 6);
        let cfg = TrainConfig {
            checkpoint_every: 1,
            epochs: 1,
            ..train_cfg()
        };
        let report = train_sft(&lm, &samples, &cfg, TrainOrder::Chronological, 7);
        let times: Vec<u32> = report.checkpoints.iter().map(|c| c.time).collect();
        let mut sorted = times.clone();
        sorted.sort_unstable();
        assert_eq!(times, sorted, "checkpoint times must ascend: {times:?}");
    }

    #[test]
    fn training_actually_teaches_the_rule() {
        let examples = toy_examples(64);
        let tok = train_tokenizer(&examples, 320);
        let samples = tokenize_all(&tok, &examples, 64);
        let lm = toy_lm(tok.vocab_size(), 8);
        let cfg = TrainConfig {
            epochs: 8,
            ..train_cfg()
        };
        train_sft(&lm, &samples, &cfg, TrainOrder::Shuffled, 9);
        // Score "Yes" vs "No" continuations for a held-out high-risk prompt.
        let prompt = {
            let mut ids = vec![zg_tokenizer::Special::Bos.id()];
            ids.extend(tok.encode("risk high\nQuestion: default? Answer:"));
            ids
        };
        let yes = tok.encode(" Yes");
        let no = tok.encode(" No");
        let s_yes = lm.score_continuation(&prompt, &yes);
        let s_no = lm.score_continuation(&prompt, &no);
        assert!(
            s_yes > s_no,
            "model failed to learn the toy rule: Yes={s_yes} No={s_no}"
        );
    }

    #[test]
    fn grad_accum_changes_nothing_structurally() {
        // Same data, accum 1 vs 2: both must converge (not equality, just
        // sanity that accumulation path works).
        let examples = toy_examples(32);
        let tok = train_tokenizer(&examples, 300);
        let samples = tokenize_all(&tok, &examples, 64);
        for accum in [1usize, 2, 4] {
            let lm = toy_lm(tok.vocab_size(), 11);
            let cfg = TrainConfig {
                grad_accum: accum,
                ..train_cfg()
            };
            let report = train_sft(&lm, &samples, &cfg, TrainOrder::Shuffled, 12);
            assert!(report.final_loss().is_finite());
        }
    }
}
