//! Multi-task supervised fine-tuning (SFT) of the LoRA-adapted model:
//! micro-batching with gradient accumulation (paper: batch 32 = 8×4),
//! cosine learning-rate decay with warmup, global-norm clipping, and
//! TracIn checkpoint capture.
//!
//! # Training fast path
//!
//! The accumulation window (the `grad_accum` micro-batches between two
//! optimizer steps) is a data-parallel axis: weights are frozen for the
//! whole window, so the per-micro-batch gradients are independent. With
//! [`TrainConfig::train_workers`] `> 1` the trainer ships an [`LmSpec`]
//! blueprint to a persistent worker pool, each worker rebuilds a
//! bit-exact replica (same blueprint→replica pattern as the parallel
//! evaluator), and micro-batches are assigned to workers in contiguous
//! chunks by micro-batch index. Gradients come back per micro-batch and
//! are reduced on the main thread **in ascending micro-batch order** —
//! the same left-fold `((g₀ + g₁) + g₂) …` the serial loop performs via
//! repeated `accumulate_grad` — so losses, gradients, and final weights
//! are bit-identical for any worker count.
//!
//! The optimizer step uses the fused [`AdamW::clip_and_step`] (one
//! gradient traversal instead of three), and every phase of the step is
//! timed into a [`Profile`] through an *injected* clock — the trainer
//! itself never reads wall time, keeping the library deterministic and
//! testable (the `zg-bench` binaries supply a real clock).

use std::sync::mpsc;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::Serialize;
use zg_influence::LmCheckpoint;
use zg_model::{AdamW, CausalLm, CosineSchedule, LmSpec};
use zg_tensor::Tensor;

use crate::config::TrainConfig;
use crate::corpus::{collate, Sample};

/// Sample ordering during training.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrainOrder {
    /// Uniform shuffling each epoch (default for tabular tasks).
    Shuffled,
    /// Ascending time order (sequential behavior data — this is what
    /// aligns checkpoint indices with data periods for TracSeq).
    Chronological,
}

/// An injected monotonic clock returning seconds. The trainer never
/// reads wall time itself; pass `None` for fully deterministic runs
/// (all [`Profile`] timings stay zero) or a real clock from a binary.
pub type Clock<'a> = &'a (dyn Fn() -> f64 + Sync);

/// Phase-level timing and allocator counters for one training run.
///
/// Timings are in seconds of the injected clock. `collate_s`, `sync_s`,
/// `reduce_s`, and `optimizer_s` are main-thread wall time; `forward_s`
/// and `backward_s` are summed across workers in parallel mode (CPU
/// seconds, not wall), and plain main-thread wall time in serial mode.
/// Pool counters are deltas of the calling thread's buffer-pool stats —
/// worker-thread pools are thread-local and not aggregated here.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct Profile {
    /// Batch assembly: padding/packing micro-batches.
    pub collate_s: f64,
    /// Parallel mode only: broadcasting updated trainable weights to
    /// worker replicas at the start of each accumulation window.
    pub sync_s: f64,
    /// Loss-graph construction (`sft_loss`).
    pub forward_s: f64,
    /// Reverse sweep (`backward`).
    pub backward_s: f64,
    /// In-order gradient reduction of worker results (parallel mode).
    pub reduce_s: f64,
    /// Fused clip + AdamW step, plus checkpoint capture.
    pub optimizer_s: f64,
    /// Micro-batches processed.
    pub microbatches: u64,
    /// Buffer-pool takes on the calling thread over the run.
    pub pool_takes: u64,
    /// Buffer-pool hits on the calling thread over the run.
    pub pool_hits: u64,
}

impl Profile {
    /// Total time across all phases.
    pub fn total_s(&self) -> f64 {
        self.collate_s
            + self.sync_s
            + self.forward_s
            + self.backward_s
            + self.reduce_s
            + self.optimizer_s
    }

    /// Fraction of pool takes served from the free list (0 when the
    /// pool saw no traffic).
    pub fn pool_hit_rate(&self) -> f64 {
        if self.pool_takes == 0 {
            0.0
        } else {
            self.pool_hits as f64 / self.pool_takes as f64
        }
    }
}

/// Outcome of a training run.
pub struct TrainReport {
    /// Mean loss per optimizer step.
    pub losses: Vec<f32>,
    /// Stored checkpoints for influence replay (empty when
    /// `checkpoint_every == 0`).
    pub checkpoints: Vec<LmCheckpoint>,
    /// Total optimizer steps taken.
    pub steps: u64,
    /// Phase timings (all zero unless a clock was injected).
    pub profile: Profile,
}

impl TrainReport {
    /// Mean loss over the final quarter of training (a stable convergence
    /// summary for tests and logs).
    pub fn final_loss(&self) -> f32 {
        if self.losses.is_empty() {
            return f32::NAN;
        }
        let tail = &self.losses[self.losses.len() - self.losses.len().div_ceil(4)..];
        tail.iter().sum::<f32>() / tail.len() as f32
    }
}

/// One collated micro-batch, ready to ship to a worker.
struct MicroJob {
    tokens: Vec<u32>,
    labels: Vec<u32>,
    b: usize,
    t: usize,
    /// Loss scale `1 / grad_accum` so accumulated gradients average.
    scale: f32,
    /// Index within the accumulation window — reduction order key.
    idx: usize,
    /// Max data period in the micro-batch (drives checkpoint `time`).
    data_time: u32,
}

/// Worker input: a weight refresh or a chunk of micro-batches.
enum WorkerMsg {
    /// Updated trainable-parameter data, in `trainable_params()` order.
    Update(Arc<Vec<Vec<f32>>>),
    /// Contiguous chunk of the current window's micro-batches.
    Jobs(Vec<MicroJob>),
    /// Shut down.
    Done,
}

/// Worker output for one micro-batch.
struct WorkerOut {
    idx: usize,
    loss: f32,
    /// Per trainable parameter: the micro-batch gradient, or `None` when
    /// the backward pass never reached it (preserves the optimizer's
    /// "skip params without grads" semantics bit-for-bit).
    grads: Vec<Option<Vec<f32>>>,
    fwd_s: f64,
    bwd_s: f64,
}

fn now(clock: Option<Clock>) -> f64 {
    clock.map(|c| c()).unwrap_or(0.0)
}

/// Run SFT over `samples`. The model must already have its trainable set
/// configured (typically LoRA-attached). Deterministic in `seed` — and in
/// `cfg.train_workers`, whose only effect is wall time.
pub fn train_sft(
    lm: &CausalLm,
    samples: &[Sample],
    cfg: &TrainConfig,
    order: TrainOrder,
    seed: u64,
) -> TrainReport {
    train_sft_profiled(lm, samples, cfg, order, seed, None)
}

/// [`train_sft`] with an injected clock for phase timing; pass `None`
/// to skip timing entirely.
pub fn train_sft_profiled(
    lm: &CausalLm,
    samples: &[Sample],
    cfg: &TrainConfig,
    order: TrainOrder,
    seed: u64,
    clock: Option<Clock>,
) -> TrainReport {
    assert!(!samples.is_empty(), "no training samples");
    let params = lm.trainable_params();
    assert!(!params.is_empty(), "model has no trainable parameters");
    let workers = match cfg.train_workers {
        0 => zg_tensor::available_threads(),
        w => w,
    };
    if workers <= 1 {
        return train_serial(lm, samples, cfg, order, seed, clock, &params);
    }
    train_parallel(lm, samples, cfg, order, seed, clock, &params, workers)
}

fn train_serial(
    lm: &CausalLm,
    samples: &[Sample],
    cfg: &TrainConfig,
    order: TrainOrder,
    seed: u64,
    clock: Option<Clock>,
    params: &[(String, Tensor)],
) -> TrainReport {
    let mut run_window = |jobs: Vec<MicroJob>, prof: &mut Profile| -> Vec<f32> {
        jobs.iter()
            .map(|job| {
                let t0 = now(clock);
                let loss = lm.sft_loss(&job.tokens, &job.labels, job.b, job.t, 0);
                let v = loss.item();
                let t1 = now(clock);
                prof.forward_s += t1 - t0;
                loss.mul_scalar(job.scale).backward();
                prof.backward_s += now(clock) - t1;
                v
            })
            .collect()
    };
    train_loop(
        lm,
        samples,
        cfg,
        order,
        seed,
        clock,
        params,
        &mut run_window,
    )
}

#[allow(clippy::too_many_arguments)]
fn train_parallel(
    lm: &CausalLm,
    samples: &[Sample],
    cfg: &TrainConfig,
    order: TrainOrder,
    seed: u64,
    clock: Option<Clock>,
    params: &[(String, Tensor)],
    workers: usize,
) -> TrainReport {
    let spec = LmSpec::snapshot(lm);
    std::thread::scope(|s| {
        let (out_tx, out_rx) = mpsc::channel::<WorkerOut>();
        let mut job_txs: Vec<mpsc::Sender<WorkerMsg>> = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (tx, rx) = mpsc::channel::<WorkerMsg>();
            job_txs.push(tx);
            let out_tx = out_tx.clone();
            let spec = &spec;
            s.spawn(move || train_worker(spec, rx, out_tx, clock));
        }
        drop(out_tx);

        let mut run_window = |jobs: Vec<MicroJob>, prof: &mut Profile| -> Vec<f32> {
            let n = jobs.len();
            // Broadcast the post-step trainable weights so every replica
            // matches the main model bit-for-bit for this window.
            let t0 = now(clock);
            let weights: Arc<Vec<Vec<f32>>> =
                Arc::new(params.iter().map(|(_, p)| p.data().to_vec()).collect());
            for tx in &job_txs {
                tx.send(WorkerMsg::Update(weights.clone()))
                    // INVARIANT: workers outlive the training loop; a closed
                    // channel means a worker panicked, which is unrecoverable.
                    .expect("worker disconnected");
            }
            // Contiguous chunks by micro-batch index: deterministic
            // assignment, independent of worker scheduling.
            let per = n.div_ceil(job_txs.len());
            let mut jobs = jobs;
            for tx in &job_txs {
                if jobs.is_empty() {
                    break;
                }
                let rest = jobs.split_off(per.min(jobs.len()));
                let chunk = std::mem::replace(&mut jobs, rest);
                tx.send(WorkerMsg::Jobs(chunk))
                    // INVARIANT: see the Update send above.
                    .expect("worker disconnected");
            }
            prof.sync_s += now(clock) - t0;

            // Collect all n results, then reduce in ascending micro-batch
            // order — the serial loop's exact accumulation order.
            let mut slots: Vec<Option<WorkerOut>> = (0..n).map(|_| None).collect();
            for _ in 0..n {
                // INVARIANT: each worker sends exactly one result per job;
                // a closed channel means a worker panicked.
                let out = out_rx.recv().expect("training worker disconnected");
                prof.forward_s += out.fwd_s;
                prof.backward_s += out.bwd_s;
                let idx = out.idx;
                slots[idx] = Some(out);
            }
            let t0 = now(clock);
            let mut losses = Vec::with_capacity(n);
            for slot in slots {
                // INVARIANT: the loop above filled every slot.
                let out = slot.expect("missing micro-batch result");
                losses.push(out.loss);
                for ((_, p), g) in params.iter().zip(&out.grads) {
                    if let Some(g) = g {
                        p.accumulate_grad(g);
                    }
                }
            }
            prof.reduce_s += now(clock) - t0;
            losses
        };
        let report = train_loop(
            lm,
            samples,
            cfg,
            order,
            seed,
            clock,
            params,
            &mut run_window,
        );
        for tx in &job_txs {
            let _ = tx.send(WorkerMsg::Done);
        }
        report
    })
}

/// Worker thread: rebuild a replica from the blueprint, then serve
/// weight refreshes and micro-batch jobs until shutdown.
fn train_worker(
    spec: &LmSpec,
    rx: mpsc::Receiver<WorkerMsg>,
    tx: mpsc::Sender<WorkerOut>,
    clock: Option<Clock>,
) {
    let replica = spec.build();
    let tparams = replica.trainable_params();
    while let Ok(msg) = rx.recv() {
        match msg {
            WorkerMsg::Update(weights) => {
                assert_eq!(
                    tparams.len(),
                    weights.len(),
                    "replica trainable set must match the main model"
                );
                for ((_, p), data) in tparams.iter().zip(weights.iter()) {
                    p.set_data(data);
                }
            }
            WorkerMsg::Jobs(jobs) => {
                for job in jobs {
                    // Debug-mode sanitizer: a micro-batch must not leave
                    // tape nodes or checked-out pooled buffers behind.
                    let _leak = zg_tensor::GraphLeakGuard::new("train_sft worker micro-batch");
                    let t0 = now(clock);
                    let loss = replica.sft_loss(&job.tokens, &job.labels, job.b, job.t, 0);
                    let v = loss.item();
                    let t1 = now(clock);
                    loss.mul_scalar(job.scale).backward();
                    let t2 = now(clock);
                    let grads: Vec<Option<Vec<f32>>> = tparams
                        .iter()
                        .map(|(_, p)| {
                            let g = p.with_grad(|g| g.to_vec());
                            p.zero_grad();
                            g
                        })
                        .collect();
                    if tx
                        .send(WorkerOut {
                            idx: job.idx,
                            loss: v,
                            grads,
                            fwd_s: t1 - t0,
                            bwd_s: t2 - t1,
                        })
                        .is_err()
                    {
                        // Main thread went away (panic unwinding); stop.
                        return;
                    }
                }
            }
            WorkerMsg::Done => break,
        }
    }
}

/// The epoch/step skeleton shared by the serial and parallel engines.
///
/// `run_window` receives one accumulation window of collated micro-batch
/// jobs, leaves their summed (scaled) gradients on `params`, and returns
/// the per-micro-batch losses in window order. Everything that touches
/// the RNG (epoch shuffling) happens here, on the main thread, so the
/// sample order stream is identical for any engine and worker count.
#[allow(clippy::too_many_arguments)]
fn train_loop(
    lm: &CausalLm,
    samples: &[Sample],
    cfg: &TrainConfig,
    order: TrainOrder,
    seed: u64,
    clock: Option<Clock>,
    params: &[(String, Tensor)],
    run_window: &mut dyn FnMut(Vec<MicroJob>, &mut Profile) -> Vec<f32>,
) -> TrainReport {
    let mut rng = StdRng::seed_from_u64(seed);

    let micro_per_epoch = samples.len().div_ceil(cfg.batch_size);
    let steps_per_epoch = micro_per_epoch.div_ceil(cfg.grad_accum).max(1);
    let total_steps = (steps_per_epoch * cfg.epochs) as u64;
    let schedule = CosineSchedule {
        max_lr: cfg.max_lr,
        min_lr: cfg.min_lr,
        warmup_steps: cfg.warmup_steps.min(total_steps / 2),
        total_steps,
    };
    let mut opt = AdamW::new(cfg.max_lr, cfg.weight_decay);

    let mut indices: Vec<usize> = (0..samples.len()).collect();
    if order == TrainOrder::Chronological {
        indices.sort_by_key(|&i| samples[i].time.unwrap_or(0));
    }

    let mut report = TrainReport {
        losses: Vec::new(),
        checkpoints: Vec::new(),
        steps: 0,
        profile: Profile::default(),
    };
    let pool0 = zg_tensor::pool_stats();
    let mut step: u64 = 0;
    for _epoch in 0..cfg.epochs {
        if order == TrainOrder::Shuffled {
            indices.shuffle(&mut rng);
        }
        for window in indices.chunks(cfg.batch_size * cfg.grad_accum) {
            let t0 = now(clock);
            let jobs: Vec<MicroJob> = window
                .chunks(cfg.batch_size)
                .enumerate()
                .map(|(idx, chunk)| {
                    let batch: Vec<&Sample> = chunk.iter().map(|&i| &samples[i]).collect();
                    let data_time = batch
                        .iter()
                        .filter_map(|s| s.time)
                        .max()
                        .unwrap_or(step as u32);
                    let (tokens, labels, b, t) = collate(&batch);
                    MicroJob {
                        tokens,
                        labels,
                        b,
                        t,
                        scale: 1.0 / cfg.grad_accum as f32,
                        idx,
                        data_time,
                    }
                })
                .collect();
            report.profile.collate_s += now(clock) - t0;
            let n = jobs.len();
            // INVARIANT: every window holds at least one micro-batch.
            let last_time = jobs.last().expect("non-empty window").data_time;

            let losses = run_window(jobs, &mut report.profile);
            debug_assert_eq!(losses.len(), n);
            report.profile.microbatches += n as u64;
            let mean_loss = losses.iter().sum::<f32>() / n as f32;

            let t0 = now(clock);
            opt.lr = schedule.lr_at(step);
            opt.clip_and_step(params, cfg.clip_norm);
            report.losses.push(mean_loss);
            if cfg.checkpoint_every > 0 && (step + 1).is_multiple_of(cfg.checkpoint_every as u64) {
                report.checkpoints.push(LmCheckpoint {
                    store: lm.checkpoint(),
                    eta: opt.lr,
                    time: last_time,
                });
            }
            report.profile.optimizer_s += now(clock) - t0;
            step += 1;
        }
    }
    let pool1 = zg_tensor::pool_stats();
    report.profile.pool_takes = pool1.takes - pool0.takes;
    report.profile.pool_hits = pool1.hits - pool0.hits;
    report.steps = step;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{tokenize_all, train_tokenizer};
    use zg_instruct::InstructExample;
    use zg_lora::{attach, LoraConfig};
    use zg_model::ModelConfig;

    fn toy_examples(n: usize) -> Vec<InstructExample> {
        // Learnable rule: "risk high" -> Yes, "risk low" -> No.
        (0..n)
            .map(|i| {
                let positive = i % 2 == 0;
                InstructExample {
                    prompt: format!(
                        "risk {}\nQuestion: default? Answer:",
                        if positive { "high" } else { "low" }
                    ),
                    answer: if positive { "Yes" } else { "No" }.to_string(),
                    candidates: vec!["No".into(), "Yes".into()],
                    dataset: "toy".into(),
                    record_id: i,
                    label: Some(positive),
                    time: Some((i % 5) as u32),
                    user: Some(i),
                }
            })
            .collect()
    }

    fn toy_lm(vocab: usize, seed: u64) -> CausalLm {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut cfg = ModelConfig::mistral_miniature(vocab);
        cfg.n_layers = 1;
        cfg.d_model = 32;
        cfg.n_heads = 4;
        cfg.n_kv_heads = 2;
        cfg.d_ff = 64;
        let mut lm = CausalLm::new(cfg, &mut rng);
        attach(&mut lm, &LoraConfig::default(), &mut rng);
        lm
    }

    fn train_cfg() -> TrainConfig {
        TrainConfig {
            max_lr: 5e-3,
            min_lr: 5e-4,
            batch_size: 8,
            grad_accum: 2,
            epochs: 3,
            warmup_steps: 2,
            clip_norm: 1.0,
            weight_decay: 0.0,
            max_seq_len: 64,
            checkpoint_every: 2,
            pretrain_epochs: 0,
            pretrain_lr: 0.0,
            train_workers: 1,
        }
    }

    #[test]
    fn loss_decreases() {
        let examples = toy_examples(64);
        let tok = train_tokenizer(&examples, 320);
        let samples = tokenize_all(&tok, &examples, 64);
        let lm = toy_lm(tok.vocab_size(), 1);
        let cfg = TrainConfig {
            epochs: 10,
            ..train_cfg()
        };
        let report = train_sft(&lm, &samples, &cfg, TrainOrder::Shuffled, 2);
        assert!(report.steps > 0);
        let first = report.losses[0];
        let last = report.final_loss();
        assert!(
            last < first * 0.8,
            "loss failed to decrease: {first} -> {last}"
        );
    }

    #[test]
    fn checkpoints_captured() {
        let examples = toy_examples(32);
        let tok = train_tokenizer(&examples, 300);
        let samples = tokenize_all(&tok, &examples, 64);
        let lm = toy_lm(tok.vocab_size(), 3);
        let report = train_sft(&lm, &samples, &train_cfg(), TrainOrder::Shuffled, 4);
        assert!(!report.checkpoints.is_empty());
        // Snapshots contain the LoRA params.
        let ck = &report.checkpoints[0];
        assert!(ck.store.names().any(|n| n.contains("lora")));
    }

    #[test]
    fn deterministic_given_seed() {
        let examples = toy_examples(24);
        let tok = train_tokenizer(&examples, 300);
        let samples = tokenize_all(&tok, &examples, 64);
        let run = |seed| {
            let lm = toy_lm(tok.vocab_size(), 5);
            train_sft(&lm, &samples, &train_cfg(), TrainOrder::Shuffled, seed).losses
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn chronological_order_sorts_by_time() {
        // With chronological order and checkpoint_every=1, checkpoint times
        // must be non-decreasing data periods.
        let examples = toy_examples(32);
        let tok = train_tokenizer(&examples, 300);
        let samples = tokenize_all(&tok, &examples, 64);
        let lm = toy_lm(tok.vocab_size(), 6);
        let cfg = TrainConfig {
            checkpoint_every: 1,
            epochs: 1,
            ..train_cfg()
        };
        let report = train_sft(&lm, &samples, &cfg, TrainOrder::Chronological, 7);
        let times: Vec<u32> = report.checkpoints.iter().map(|c| c.time).collect();
        let mut sorted = times.clone();
        sorted.sort_unstable();
        assert_eq!(times, sorted, "checkpoint times must ascend: {times:?}");
    }

    #[test]
    fn training_actually_teaches_the_rule() {
        let examples = toy_examples(64);
        let tok = train_tokenizer(&examples, 320);
        let samples = tokenize_all(&tok, &examples, 64);
        let lm = toy_lm(tok.vocab_size(), 8);
        let cfg = TrainConfig {
            epochs: 8,
            ..train_cfg()
        };
        train_sft(&lm, &samples, &cfg, TrainOrder::Shuffled, 9);
        // Score "Yes" vs "No" continuations for a held-out high-risk prompt.
        let prompt = {
            let mut ids = vec![zg_tokenizer::Special::Bos.id()];
            ids.extend(tok.encode("risk high\nQuestion: default? Answer:"));
            ids
        };
        let yes = tok.encode(" Yes");
        let no = tok.encode(" No");
        let s_yes = lm.score_continuation(&prompt, &yes);
        let s_no = lm.score_continuation(&prompt, &no);
        assert!(
            s_yes > s_no,
            "model failed to learn the toy rule: Yes={s_yes} No={s_no}"
        );
    }

    #[test]
    fn grad_accum_changes_nothing_structurally() {
        // Same data, accum 1 vs 2: both must converge (not equality, just
        // sanity that accumulation path works).
        let examples = toy_examples(32);
        let tok = train_tokenizer(&examples, 300);
        let samples = tokenize_all(&tok, &examples, 64);
        for accum in [1usize, 2, 4] {
            let lm = toy_lm(tok.vocab_size(), 11);
            let cfg = TrainConfig {
                grad_accum: accum,
                ..train_cfg()
            };
            let report = train_sft(&lm, &samples, &cfg, TrainOrder::Shuffled, 12);
            assert!(report.final_loss().is_finite());
        }
    }

    #[test]
    fn parallel_training_bit_identical_to_serial() {
        // The tentpole guarantee: losses AND final weights are exactly
        // (f64/bitwise) equal for any worker count.
        let examples = toy_examples(24);
        let tok = train_tokenizer(&examples, 300);
        let samples = tokenize_all(&tok, &examples, 64);
        let run = |workers: usize| {
            let lm = toy_lm(tok.vocab_size(), 5);
            let cfg = TrainConfig {
                train_workers: workers,
                ..train_cfg()
            };
            let report = train_sft(&lm, &samples, &cfg, TrainOrder::Shuffled, 9);
            let weights: Vec<Vec<f32>> = lm
                .trainable_params()
                .into_iter()
                .map(|(_, p)| p.data().to_vec())
                .collect();
            (report.losses, weights, report.steps)
        };
        let (base_losses, base_weights, base_steps) = run(1);
        for workers in [2usize, 3, 5] {
            let (losses, weights, steps) = run(workers);
            assert_eq!(steps, base_steps);
            let exact: Vec<f64> = losses.iter().map(|&l| l as f64).collect();
            let base_exact: Vec<f64> = base_losses.iter().map(|&l| l as f64).collect();
            assert_eq!(
                exact, base_exact,
                "losses diverged from serial at {workers} workers"
            );
            assert_eq!(
                weights, base_weights,
                "final weights diverged from serial at {workers} workers"
            );
        }
    }

    #[test]
    fn profiler_counts_phases_with_injected_clock() {
        let examples = toy_examples(16);
        let tok = train_tokenizer(&examples, 300);
        let samples = tokenize_all(&tok, &examples, 64);
        let lm = toy_lm(tok.vocab_size(), 13);
        // A deterministic fake clock: each read advances by 1 "second",
        // so every timed phase accrues a positive duration.
        let ticks = std::sync::atomic::AtomicU64::new(0);
        let clock = move || ticks.fetch_add(1, std::sync::atomic::Ordering::Relaxed) as f64;
        let cfg = TrainConfig {
            epochs: 1,
            ..train_cfg()
        };
        let report =
            train_sft_profiled(&lm, &samples, &cfg, TrainOrder::Shuffled, 14, Some(&clock));
        let p = report.profile;
        assert!(p.collate_s > 0.0 && p.forward_s > 0.0 && p.backward_s > 0.0);
        assert!(p.optimizer_s > 0.0);
        assert_eq!(p.microbatches, 2); // 16 samples / batch 8
        assert!(p.total_s() > 0.0);
        // Serial run: no sync/reduce phases.
        assert_eq!(p.sync_s, 0.0);
        assert_eq!(p.reduce_s, 0.0);
        // The training loop recycles backward scratch through the pool.
        assert!(p.pool_takes > 0, "pool saw no traffic");
        assert!(p.pool_hit_rate() > 0.0, "pool never hit");
        // Without a clock all timings stay zero.
        let lm2 = toy_lm(tok.vocab_size(), 13);
        let silent = train_sft(&lm2, &samples, &cfg, TrainOrder::Shuffled, 14);
        assert_eq!(silent.profile.total_s(), 0.0);
    }

    #[test]
    fn parallel_run_leaves_no_pooled_buffers_checked_out() {
        let examples = toy_examples(16);
        let tok = train_tokenizer(&examples, 300);
        let samples = tokenize_all(&tok, &examples, 64);
        let lm = toy_lm(tok.vocab_size(), 15);
        let cfg = TrainConfig {
            epochs: 1,
            train_workers: 2,
            ..train_cfg()
        };
        let before = zg_tensor::pool_stats().checked_out;
        let report = train_sft(&lm, &samples, &cfg, TrainOrder::Shuffled, 16);
        assert!(report.steps > 0);
        let after = zg_tensor::pool_stats().checked_out;
        assert_eq!(
            before, after,
            "training leaked checked-out pooled buffers on the main thread"
        );
    }
}
