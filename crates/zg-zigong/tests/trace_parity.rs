//! Observation is behaviorally free: tracing must never change what the
//! pipelines compute, and the traces themselves must be deterministic.
//!
//! - Training, evaluation, and influence scoring produce **bit-identical**
//!   outputs (exact f64 widening, no tolerances) with tracing off vs on.
//! - A serial run under the deterministic tick clock produces
//!   **byte-identical** trace JSONL across repeated runs.
//! - A parallel run under a clockless tracer (all timestamps zero, pure
//!   structure) produces byte-identical trace JSONL across repeated runs
//!   however the worker threads race, and per-span counts are invariant
//!   to the worker count.

use rand::rngs::StdRng;
use rand::SeedableRng;
use zg_influence::{influence_scores_with, CheckpointGrads, ParallelConfig, TracConfig};
use zg_instruct::InstructExample;
use zg_lora::{attach, LoraConfig};
use zg_model::{CausalLm, ModelConfig};
use zg_tokenizer::BpeTokenizer;
use zg_zigong::{
    eval_items, evaluate_zigong, tokenize_all, train_sft, train_tokenizer, TrainConfig, TrainOrder,
    ZiGongModel,
};

fn toy_examples(n: usize) -> Vec<InstructExample> {
    (0..n)
        .map(|i| {
            let positive = i % 2 == 0;
            InstructExample {
                prompt: format!(
                    "risk {}\nQuestion: default? Answer:",
                    if positive { "high" } else { "low" }
                ),
                answer: if positive { "Yes" } else { "No" }.to_string(),
                candidates: vec!["No".into(), "Yes".into()],
                dataset: "toy".into(),
                record_id: i,
                label: Some(positive),
                time: Some((i % 5) as u32),
                user: Some(i),
            }
        })
        .collect()
}

fn toy_lm(vocab: usize, seed: u64) -> CausalLm {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cfg = ModelConfig::mistral_miniature(vocab);
    cfg.n_layers = 1;
    cfg.d_model = 32;
    cfg.n_heads = 4;
    cfg.n_kv_heads = 2;
    cfg.d_ff = 64;
    let mut lm = CausalLm::new(cfg, &mut rng);
    attach(&mut lm, &LoraConfig::default(), &mut rng);
    lm
}

fn train_cfg(workers: usize) -> TrainConfig {
    TrainConfig {
        max_lr: 5e-3,
        min_lr: 5e-4,
        batch_size: 8,
        grad_accum: 2,
        epochs: 1,
        warmup_steps: 2,
        clip_norm: 1.0,
        weight_decay: 0.0,
        max_seq_len: 64,
        checkpoint_every: 2,
        pretrain_epochs: 0,
        pretrain_lr: 0.0,
        train_workers: workers,
    }
}

/// Losses (widened exactly to f64) and final trainable weights of one run.
fn train_outputs(
    samples: &[zg_zigong::Sample],
    vocab: usize,
    workers: usize,
) -> (Vec<f64>, Vec<Vec<f32>>) {
    let lm = toy_lm(vocab, 5);
    let report = train_sft(&lm, samples, &train_cfg(workers), TrainOrder::Shuffled, 9);
    let losses = report.losses.iter().map(|&l| l as f64).collect();
    let weights = lm
        .trainable_params()
        .into_iter()
        .map(|(_, p)| p.data().to_vec())
        .collect();
    (losses, weights)
}

#[test]
fn training_is_bitwise_invariant_to_tracing() {
    let examples = toy_examples(16);
    let tok = train_tokenizer(&examples, 300);
    let samples = tokenize_all(&tok, &examples, 64);
    for workers in [1usize, 2] {
        let off = train_outputs(&samples, tok.vocab_size(), workers);
        let tracer = zg_trace::Tracer::with_clock(zg_trace::tick_clock());
        let on = {
            let _root = tracer.install("run");
            train_outputs(&samples, tok.vocab_size(), workers)
        };
        assert_eq!(
            off.0, on.0,
            "losses changed under tracing ({workers} workers)"
        );
        assert_eq!(
            off.1, on.1,
            "weights changed under tracing ({workers} workers)"
        );
        assert!(
            !tracer.finish().streams.is_empty(),
            "the traced run must actually have recorded a trace"
        );
    }
}

fn tiny_zigong() -> ZiGongModel {
    let mut rng = StdRng::seed_from_u64(1);
    // Match the LM vocab to the tokenizer so every greedily sampled id
    // stays decodable even from the untrained model.
    let mut cfg = ModelConfig::mistral_miniature(BpeTokenizer::byte_level().vocab_size());
    cfg.n_layers = 1;
    cfg.d_model = 16;
    cfg.n_heads = 2;
    cfg.n_kv_heads = 1;
    cfg.d_ff = 32;
    let lm = CausalLm::new(cfg, &mut rng);
    ZiGongModel::new(lm, BpeTokenizer::byte_level(), 64, "tiny")
}

#[test]
fn evaluation_is_bitwise_invariant_to_tracing() {
    let m = tiny_zigong();
    let ds = zg_data::german(40, 8);
    let (_, test) = ds.split(0.3);
    let items = eval_items(&ds, &test);
    let off = evaluate_zigong(&m, &items, 2);
    let tracer = zg_trace::Tracer::with_clock(zg_trace::tick_clock());
    let on = {
        let _root = tracer.install("run");
        evaluate_zigong(&m, &items, 2)
    };
    assert_eq!(off.eval.acc, on.eval.acc);
    assert_eq!(off.eval.f1, on.eval.f1);
    assert_eq!(off.eval.miss, on.eval.miss);
    assert_eq!(off.ks, on.ks);
    assert_eq!(off.auc, on.auc);
    let trace = tracer.finish();
    assert_eq!(
        trace.counters()["eval.items"],
        items.len() as f64,
        "every item must be counted exactly once across worker streams"
    );
}

fn toy_checkpoints() -> Vec<CheckpointGrads> {
    let mut rng = StdRng::seed_from_u64(3);
    (0..3u32)
        .map(|t| {
            let mut vec = |n: usize| -> Vec<Vec<f32>> {
                (0..n)
                    .map(|_| {
                        (0..24)
                            .map(|_| rand::Rng::gen_range(&mut rng, -1.0..1.0))
                            .collect()
                    })
                    .collect()
            };
            CheckpointGrads {
                eta: 0.1,
                time: t,
                train: vec(10),
                test: vec(4),
            }
        })
        .collect()
}

#[test]
fn influence_scores_bitwise_invariant_to_tracing() {
    let checkpoints = toy_checkpoints();
    let cfg = TracConfig::default();
    let par = ParallelConfig {
        workers: 2,
        sketch_dim: Some(8),
        sketch_seed: 11,
    };
    let off = influence_scores_with(&checkpoints, &cfg, None, &par);
    let tracer = zg_trace::Tracer::with_clock(zg_trace::tick_clock());
    let on = {
        let _root = tracer.install("run");
        influence_scores_with(&checkpoints, &cfg, None, &par)
    };
    assert_eq!(off, on, "influence scores changed under tracing");
    let trace = tracer.finish();
    assert!(trace.span_totals().contains_key("influence.scores"));
}

#[test]
fn serial_training_trace_is_byte_identical_across_runs() {
    let examples = toy_examples(16);
    let tok = train_tokenizer(&examples, 300);
    let samples = tokenize_all(&tok, &examples, 64);
    let run = || {
        // Fresh tick clock per run: timestamps depend only on the event
        // sequence, so a repeated run must reproduce the trace byte for
        // byte. The buffer pool is cleared so the second run starts as
        // cold as the first (pool.hits is part of the trace).
        zg_tensor::clear_pool();
        let tracer = zg_trace::Tracer::with_clock(zg_trace::tick_clock());
        {
            let _root = tracer.install("run");
            let lm = toy_lm(tok.vocab_size(), 5);
            train_sft(&lm, &samples, &train_cfg(1), TrainOrder::Shuffled, 9);
        }
        tracer.finish().to_jsonl()
    };
    let a = run();
    assert_eq!(a, run(), "serial trace must be reproducible");
    // And it parses back losslessly.
    let trace = zg_trace::Trace::from_jsonl(&a).expect("roundtrip");
    assert_eq!(trace.to_jsonl(), a);
}

#[test]
fn parallel_training_trace_is_byte_identical_across_runs() {
    let examples = toy_examples(16);
    let tok = train_tokenizer(&examples, 300);
    let samples = tokenize_all(&tok, &examples, 64);
    let run = |workers: usize| {
        // Clockless tracer: all timestamps are zero, so the bytes pin the
        // pure structure (stream order, span nesting, counters) — which
        // must not depend on how the worker threads race. Clearing the
        // main-thread pool keeps pool.hits identical across runs.
        zg_tensor::clear_pool();
        let tracer = zg_trace::Tracer::new();
        {
            let _root = tracer.install("run");
            let lm = toy_lm(tok.vocab_size(), 5);
            train_sft(&lm, &samples, &train_cfg(workers), TrainOrder::Shuffled, 9);
        }
        tracer.finish()
    };
    let a = run(3).to_jsonl();
    assert_eq!(
        a,
        run(3).to_jsonl(),
        "parallel trace structure must be scheduling-independent"
    );
    // Phase span counts are invariant to the worker count.
    let forward = |w: usize| run(w).span_totals()["train.forward"].count;
    let base = forward(1);
    assert!(base > 0);
    assert_eq!(forward(2), base);
    assert_eq!(forward(3), base);
}
