//! Property tests for the training fast path:
//!
//! - For arbitrary sample counts, batch shapes, accumulation depths, and
//!   seeds, the parallel engine is **bit-identical** to serial for any
//!   worker count (losses and final trainable weights).
//! - Gradient accumulation depth `k` vs `1` is structurally equivalent:
//!   same number of micro-batches consumed, finite converging losses,
//!   and identical checkpoint cadence semantics — for both engines.
//! - A profiled run and an unprofiled run produce identical training
//!   results (the injected clock must be an observer, not a participant).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use zg_instruct::InstructExample;
use zg_lora::{attach, LoraConfig};
use zg_model::{CausalLm, ModelConfig};
use zg_zigong::{
    tokenize_all, train_sft, train_sft_profiled, train_tokenizer, TrainConfig, TrainOrder,
};

fn toy_examples(n: usize) -> Vec<InstructExample> {
    (0..n)
        .map(|i| {
            let positive = i % 2 == 0;
            InstructExample {
                prompt: format!(
                    "risk {}\nQuestion: default? Answer:",
                    if positive { "high" } else { "low" }
                ),
                answer: if positive { "Yes" } else { "No" }.to_string(),
                candidates: vec!["No".into(), "Yes".into()],
                dataset: "toy".into(),
                record_id: i,
                label: Some(positive),
                time: Some((i % 4) as u32),
                user: Some(i),
            }
        })
        .collect()
}

fn toy_lm(vocab: usize, seed: u64) -> CausalLm {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cfg = ModelConfig::mistral_miniature(vocab);
    cfg.n_layers = 1;
    cfg.d_model = 16;
    cfg.n_heads = 2;
    cfg.n_kv_heads = 1;
    cfg.d_ff = 32;
    let mut lm = CausalLm::new(cfg, &mut rng);
    attach(&mut lm, &LoraConfig::default(), &mut rng);
    lm
}

fn cfg_with(batch_size: usize, grad_accum: usize, workers: usize) -> TrainConfig {
    TrainConfig {
        max_lr: 5e-3,
        min_lr: 5e-4,
        batch_size,
        grad_accum,
        epochs: 1,
        warmup_steps: 1,
        clip_norm: 1.0,
        weight_decay: 0.0,
        max_seq_len: 48,
        checkpoint_every: 0,
        pretrain_epochs: 0,
        pretrain_lr: 0.0,
        train_workers: workers,
    }
}

/// Train on a fresh model and return (per-step losses as exact f64 bits,
/// final trainable weights).
fn run(
    samples: &[zg_zigong::Sample],
    vocab: usize,
    cfg: &TrainConfig,
    seed: u64,
) -> (Vec<u64>, Vec<Vec<f32>>) {
    let lm = toy_lm(vocab, 21);
    let report = train_sft(&lm, samples, cfg, TrainOrder::Shuffled, seed);
    let losses = report
        .losses
        .iter()
        .map(|&l| (l as f64).to_bits())
        .collect();
    let weights = lm
        .trainable_params()
        .into_iter()
        .map(|(_, p)| p.data().to_vec())
        .collect();
    (losses, weights)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The tentpole reduction guarantee, property-tested: any sample
    /// count / batch size / accumulation depth / seed, any worker count —
    /// losses and final weights match the serial run bit-for-bit.
    #[test]
    fn parallel_engine_bit_identical_for_any_shape(
        n_samples in 9..24usize,
        batch_size in 2..5usize,
        grad_accum in 1..4usize,
        workers in 2..5usize,
        seed in 0u64..1000,
    ) {
        let examples = toy_examples(n_samples);
        let tok = train_tokenizer(&examples, 300);
        let samples = tokenize_all(&tok, &examples, 48);
        let vocab = tok.vocab_size();

        let serial = run(&samples, vocab, &cfg_with(batch_size, grad_accum, 1), seed);
        let parallel = run(&samples, vocab, &cfg_with(batch_size, grad_accum, workers), seed);
        prop_assert_eq!(serial.0, parallel.0);
        prop_assert_eq!(serial.1, parallel.1);
    }

    /// Accumulation depth k vs 1 is structurally equivalent under both
    /// engines: same total micro-batch consumption, k-fold fewer steps
    /// (up to the final ragged window), and finite losses throughout.
    #[test]
    fn grad_accum_structurally_equivalent_serial_and_parallel(
        grad_accum in 2..4usize,
        workers in 1..4usize,
        seed in 0u64..1000,
    ) {
        let examples = toy_examples(16);
        let tok = train_tokenizer(&examples, 300);
        let samples = tokenize_all(&tok, &examples, 48);

        let base = {
            let lm = toy_lm(tok.vocab_size(), 21);
            train_sft(&lm, &samples, &cfg_with(4, 1, workers), TrainOrder::Shuffled, seed)
        };
        let accum = {
            let lm = toy_lm(tok.vocab_size(), 21);
            train_sft(&lm, &samples, &cfg_with(4, grad_accum, workers), TrainOrder::Shuffled, seed)
        };
        // 16 samples / batch 4 = 4 micro-batches per epoch in both runs.
        prop_assert_eq!(base.profile.microbatches, accum.profile.microbatches);
        prop_assert_eq!(base.steps, 4);
        prop_assert_eq!(accum.steps as usize, 4usize.div_ceil(grad_accum));
        prop_assert!(base.losses.iter().all(|l| l.is_finite()));
        prop_assert!(accum.losses.iter().all(|l| l.is_finite()));
    }
}

/// The tensor engine's op fast paths (sliced broadcast kernels,
/// dead-gradient GEMM skip, run-copy permute) must be bit-transparent to
/// training: a full serial SFT run with them pinned off reproduces the
/// default run's losses and weights exactly.
#[test]
fn op_fast_paths_bit_transparent_in_training() {
    let examples = toy_examples(12);
    let tok = train_tokenizer(&examples, 300);
    let samples = tokenize_all(&tok, &examples, 48);
    let cfg = cfg_with(4, 2, 1);

    let run = |fast: bool| {
        let prev = zg_tensor::set_op_fast_paths(fast);
        let lm = toy_lm(tok.vocab_size(), 21);
        let report = train_sft(&lm, &samples, &cfg, TrainOrder::Shuffled, 33);
        let weights: Vec<Vec<f32>> = lm
            .trainable_params()
            .into_iter()
            .map(|(_, p)| p.data().to_vec())
            .collect();
        zg_tensor::set_op_fast_paths(prev);
        (report.losses, weights)
    };
    let reference = run(false);
    let optimized = run(true);
    assert_eq!(reference.0, optimized.0, "losses diverged");
    assert_eq!(reference.1, optimized.1, "weights diverged");
}

#[test]
fn profiled_run_matches_unprofiled_bitwise() {
    let examples = toy_examples(12);
    let tok = train_tokenizer(&examples, 300);
    let samples = tokenize_all(&tok, &examples, 48);
    let cfg = cfg_with(4, 2, 2);

    let lm_a = toy_lm(tok.vocab_size(), 21);
    let plain = train_sft(&lm_a, &samples, &cfg, TrainOrder::Shuffled, 33);

    let lm_b = toy_lm(tok.vocab_size(), 21);
    let profiled = train_sft_profiled(
        &lm_b,
        &samples,
        &cfg,
        TrainOrder::Shuffled,
        33,
        Some(zg_trace::tick_clock()),
    );

    assert_eq!(plain.losses, profiled.losses);
    assert!(profiled.profile.total_s() > 0.0);
    let wa: Vec<Vec<f32>> = lm_a
        .trainable_params()
        .into_iter()
        .map(|(_, p)| p.data().to_vec())
        .collect();
    let wb: Vec<Vec<f32>> = lm_b
        .trainable_params()
        .into_iter()
        .map(|(_, p)| p.data().to_vec())
        .collect();
    assert_eq!(wa, wb, "clock injection changed training results");
}
