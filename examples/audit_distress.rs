//! The two remaining task families: financial distress identification
//! (CALM's fourth task, paper §4) and financial auditing (Figure 1).
//! Compares the expert system against majority on both, with the
//! risk-control views (KS, gains table) a review committee would read.
//!
//! ```bash
//! cargo run --release --example audit_distress
//! ```

use zigong::data::{auditing_dataset, polish_distress};
use zigong::eval::{gains_table, precision_at_k};
use zigong::zigong::{
    eval_items, evaluate_classifier, CreditClassifier, EvalItem, LogisticExpert, MajorityClass,
};

fn report(name: &str, ds: &zigong::data::Dataset) {
    let (train, test) = ds.split(0.25);
    println!(
        "== {name}: {} train / {} test, positive rate {:.1}% ==",
        train.len(),
        test.len(),
        ds.positive_rate() * 100.0
    );
    println!("sample: {}\n", ds.records[0].feature_text());

    let items = eval_items(ds, &test);
    let mut expert = LogisticExpert::fit(&train, 3);
    let re = evaluate_classifier(&mut expert, &items);
    let mut majority = MajorityClass::fit(&train);
    let rm = evaluate_classifier(&mut majority, &items);
    println!(
        "expert   acc={:.3} f1={:.3} ks={:.3} auc={:.3}",
        re.eval.acc, re.eval.f1, re.ks, re.auc
    );
    println!("majority acc={:.3} f1={:.3}", rm.eval.acc, rm.eval.f1);

    // Gains table over the expert's scores — how much review effort finds
    // how many irregular cases.
    let scores: Vec<f64> = items.iter().map(|it: &EvalItem| expert.score(it)).collect();
    let labels: Vec<bool> = test.iter().map(|r| r.label).collect();
    let gains = gains_table(&scores, &labels, 5);
    println!("\nband  count  positives  cum.capture  cum.lift");
    for b in &gains {
        println!(
            "{:>4}  {:>5}  {:>9}  {:>11.2}  {:>8.2}",
            b.band, b.count, b.positives, b.cumulative_capture, b.cumulative_lift
        );
    }
    let k = test.len() / 10;
    println!(
        "reviewing the top decile ({k} entries) yields precision {:.2}\n",
        precision_at_k(&scores, &labels, k)
    );
}

fn main() {
    report("Financial Auditing", &auditing_dataset(2000, 11));
    report("Polish Distress", &polish_distress(2000, 12));
}
