//! The Behavior Card service (paper §1, contribution 3): the deployed
//! scoring facade that "supports the operational model in the loan
//! process". Trains an expert scorer on behavior data, stands up the
//! service, scores a batch of incoming applications, adjusts the risk
//! policy, and prints the audit trail.
//!
//! ```bash
//! cargo run --release --example behavior_card
//! ```

use zigong::data::{behavior_sequences, BehaviorConfig};
use zigong::zigong::{split_behavior_by_user, BehaviorCardService, LogisticExpert};

fn main() {
    // Historical behavior data for model building.
    let ds = behavior_sequences(
        &BehaviorConfig {
            n_users: 300,
            periods: 6,
            persistence: 0.6,
            noise_std: 0.4,
            positive_rate: 0.25,
        },
        99,
    );
    let (train, incoming) = split_behavior_by_user(&ds, 0.2);
    println!(
        "Training the operational scorer on {} historical records…",
        train.len()
    );
    let scorer = LogisticExpert::fit(&train, 5);

    // Stand up the service with an initial risk threshold.
    let mut service = BehaviorCardService::new(scorer, &ds, 0.55);
    println!(
        "Behavior Card service online (threshold {:.2})\n",
        service.threshold()
    );

    // Score incoming applications (unseen users at the current period).
    let decisions = service.score_batch(&incoming);
    for (record, decision) in incoming.iter().zip(&decisions).take(5) {
        println!(
            "user {:>3}  risk={:.3}  {}  reasons: {}",
            record.user.expect("behavior records carry users"),
            decision.risk_score,
            if decision.approved {
                "APPROVED"
            } else {
                "DECLINED"
            },
            decision.reasons.join(" | ")
        );
    }
    println!(
        "…\napproval rate: {:.1}% over {} decisions",
        service.approval_rate() * 100.0,
        decisions.len()
    );

    // Risk-policy tightening: lower the threshold and re-score.
    service.set_threshold(0.35);
    let tightened = service.score_batch(&incoming);
    let approved_now = tightened.iter().filter(|d| d.approved).count();
    println!(
        "\nAfter tightening the policy to 0.35: {} of {} approved",
        approved_now,
        tightened.len()
    );

    // Audit trail (regulatory traceability).
    let log = service.audit_log();
    println!(
        "\naudit log: {} entries; last entry: {:?}",
        log.len(),
        log.last().expect("non-empty")
    );

    // Decision quality against ground truth (for monitoring dashboards).
    let declined_correctly = incoming
        .iter()
        .zip(&tightened)
        .filter(|(r, d)| r.label && !d.approved)
        .count();
    let actual_bad = incoming.iter().filter(|r| r.label).count();
    println!(
        "caught {declined_correctly}/{actual_bad} of the users who would default (strict policy)"
    );
}
