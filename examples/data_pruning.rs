//! TracSeq data pruning on sequential behavior data — the paper's core
//! contribution, end to end:
//!
//! 1. Generate drifting user-behavior sequences (AR(1) latent risk).
//! 2. Train the lightweight agent model *chronologically*, checkpointing
//!    after each period.
//! 3. Score every training record with TracSeq (Eq. 1) and with vanilla
//!    TracInCP (γ = 1) for contrast.
//! 4. Select Top-K (Eq. 2), build the 70/30 hybrid mix (§3.2), and show
//!    that high-influence selection transfers to a better downstream
//!    model.
//!
//! ```bash
//! cargo run --release --example data_pruning
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use zigong::data::{behavior_sequences, BehaviorConfig};
use zigong::eval::roc_auc;
use zigong::influence::{select_top_k, AgentConfig, AgentModel};
use zigong::zigong::{
    agent_tracseq_scores, behavior_samples, hybrid_selection, split_behavior_by_user,
};

fn downstream_auc(
    train_s: &[(Vec<f32>, bool, u32)],
    picks: &[usize],
    test_s: &[(Vec<f32>, bool)],
) -> f64 {
    let xs: Vec<Vec<f32>> = picks.iter().map(|&i| train_s[i].0.clone()).collect();
    let ys: Vec<bool> = picks.iter().map(|&i| train_s[i].1).collect();
    let mut rng = StdRng::seed_from_u64(7);
    let (m, _) = AgentModel::fit(&xs, &ys, &AgentConfig::default(), &mut rng);
    let probs: Vec<f64> = test_s
        .iter()
        .map(|(x, _)| m.predict_proba(x) as f64)
        .collect();
    let labels: Vec<bool> = test_s.iter().map(|(_, y)| *y).collect();
    roc_auc(&probs, &labels)
}

fn main() {
    // Drifting behavior data: recent periods are more predictive, the
    // regime TracSeq is designed for.
    let ds = behavior_sequences(
        &BehaviorConfig {
            n_users: 400,
            periods: 6,
            persistence: 0.5,
            noise_std: 0.4,
            positive_rate: 0.3,
        },
        2024,
    );
    let (train, test) = split_behavior_by_user(&ds, 0.2);
    println!(
        "Behavior Card data: {} train records ({} users x 6 periods), {} test users",
        train.len(),
        train.len() / 6,
        test.len()
    );

    let train_s = behavior_samples(&train);
    let test_s: Vec<(Vec<f32>, bool)> = test
        .iter()
        .map(|r| (r.numeric_features(), r.label))
        .collect();

    // TracSeq (γ = 0.8) vs vanilla TracInCP (γ = 1).
    let tracseq = agent_tracseq_scores(&train_s, &test_s, 0.8, false, 11);
    let tracin = agent_tracseq_scores(&train_s, &test_s, 1.0, false, 11);

    // Where does each method's Top-20% come from, period-wise?
    for (name, scores) in [("TracSeq(γ=0.8)", &tracseq), ("TracInCP(γ=1)", &tracin)] {
        let top = select_top_k(scores, train_s.len() / 5);
        let mut per_period = [0usize; 6];
        for &i in &top {
            per_period[train_s[i].2 as usize] += 1;
        }
        println!("{name:<15} top-20% picks per period: {per_period:?}");
    }

    // Downstream value: retrain on each half.
    let k = train_s.len() / 2;
    let auc_seq = downstream_auc(&train_s, &select_top_k(&tracseq, k), &test_s);
    let auc_in = downstream_auc(&train_s, &select_top_k(&tracin, k), &test_s);
    let all: Vec<usize> = (0..train_s.len()).collect();
    let auc_all = downstream_auc(&train_s, &all, &test_s);
    println!("\nDownstream test AUC (agent retrained on the selected half):");
    println!("  top-half by TracSeq : {auc_seq:.3}");
    println!("  top-half by TracInCP: {auc_in:.3}");
    println!("  full dataset        : {auc_all:.3}");

    // The paper's deployment mix: 70% random + 30% high-influence.
    let mix = hybrid_selection(&train, &test, 0.8, train.len() / 2, 33);
    let auc_mix = downstream_auc(&train_s, &mix, &test_s);
    println!("  70/30 hybrid mix    : {auc_mix:.3} (paper §3.2 recipe)");
}
