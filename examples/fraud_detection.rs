//! Fraud detection on the heavily imbalanced ccFraud-style dataset:
//! why accuracy lies, why the paper reports F1 and Miss, and how the KS
//! statistic summarizes risk separation.
//!
//! ```bash
//! cargo run --release --example fraud_detection
//! ```

use zigong::data::ccfraud;
use zigong::zigong::{eval_items, evaluate_classifier, LogisticExpert, MajorityClass, RandomGuess};

fn main() {
    let ds = ccfraud(4000, 7);
    let (train, test) = ds.split(0.25);
    println!(
        "ccFraud: {} train / {} test, fraud rate {:.2}% (matches the real dataset's 5.96%)",
        train.len(),
        test.len(),
        ds.positive_rate() * 100.0
    );
    println!("\nSample application:\n{}\n", ds.records[0].feature_text());

    let items = eval_items(&ds, &test);

    // Majority class: high accuracy, zero fraud caught.
    let mut majority = MajorityClass::fit(&train);
    let rm = evaluate_classifier(&mut majority, &items);
    println!(
        "{:<12} acc={:.3} f1={:.3} ks={:.3}   <- accuracy lies under imbalance",
        "Majority", rm.eval.acc, rm.eval.f1, rm.ks
    );

    // Random guessing.
    let mut random = RandomGuess::new(3);
    let rr = evaluate_classifier(&mut random, &items);
    println!(
        "{:<12} acc={:.3} f1={:.3} ks={:.3}",
        "Random", rr.eval.acc, rr.eval.f1, rr.ks
    );

    // Expert system: prior-matched threshold, real fraud detection.
    let mut expert = LogisticExpert::fit(&train, 5);
    let re = evaluate_classifier(&mut expert, &items);
    println!(
        "{:<12} acc={:.3} f1={:.3} ks={:.3}   <- F1 and KS expose the difference",
        "Expert-LR", re.eval.acc, re.eval.f1, re.ks
    );

    assert!(re.eval.f1 > rm.eval.f1, "expert must catch actual fraud");
    assert!(re.ks > rr.ks, "expert scores must separate the classes");

    // The paper's Table 2 footnote: "The related studies balance the data
    // for the test set" — show how the numbers move on a balanced test.
    let balanced = ds.balanced_test(0.25);
    let items_bal = eval_items(&ds, &balanced);
    let rb = evaluate_classifier(&mut expert, &items_bal);
    println!(
        "\nExpert-LR on a class-balanced test set ({} examples): acc={:.3} f1={:.3}",
        balanced.len(),
        rb.eval.acc,
        rb.eval.f1
    );
}
