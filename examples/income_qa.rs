//! The generative QA task of paper §3.2: predict a user's income level
//! from QA-collected attributes (education, residence, past earnings) and
//! device details (phone brand, model, price, purchase year).
//!
//! Trains the miniature ZiGong on income instructions and reports
//! 3-way accuracy / macro-F1 / Miss with the multiclass evaluator.
//!
//! ```bash
//! cargo run --release --example income_qa
//! ```

use zigong::data::{income_dataset, IncomeBucket};
use zigong::eval::evaluate_multiclass;
use zigong::instruct::{parse_answer, render_income};
use zigong::zigong::{train_zigong, TrainOrder, ZiGongConfig};

fn main() {
    let records = income_dataset(360, 11);
    let (train, test) = records.split_at(300);
    let examples: Vec<_> = train.iter().map(render_income).collect();
    println!("Sample income-QA prompt:\n{}\n", examples[0].prompt);

    let mut cfg = ZiGongConfig::miniature(11);
    cfg.vocab_size = 450;
    cfg.model.vocab_size = 450;
    cfg.train.epochs = 2;
    cfg.train.pretrain_epochs = 3;
    cfg.train.max_seq_len = 160;
    cfg.train.checkpoint_every = 0;
    println!("Training on {} income instructions…", examples.len());
    let (mut model, report) = train_zigong(&examples, &cfg, TrainOrder::Shuffled, "ZiGong-income");
    println!(
        "  {} steps, loss {:.3} -> {:.3}\n",
        report.steps,
        report.losses.first().copied().unwrap_or(f32::NAN),
        report.final_loss()
    );

    // Evaluate 3-way bucket prediction.
    let candidates: Vec<String> = IncomeBucket::ALL.iter().map(|b| b.text().into()).collect();
    let mut preds: Vec<Option<usize>> = Vec::new();
    let mut labels: Vec<usize> = Vec::new();
    for rec in test {
        let ex = render_income(rec);
        let answer = model.generate_answer(&ex.prompt, 6);
        preds.push(parse_answer(&answer, &candidates));
        labels.push(
            IncomeBucket::ALL
                .iter()
                .position(|b| *b == rec.bucket())
                .expect("bucket present"),
        );
    }
    let r = evaluate_multiclass(&preds, &labels, 3);
    println!(
        "income-level prediction: acc={:.3} macro-f1={:.3} miss={:.3} over {} users",
        r.acc, r.f1, r.miss, r.n
    );

    // Show a few generations.
    for rec in test.iter().take(3) {
        let ex = render_income(rec);
        let answer = model.generate_answer(&ex.prompt, 6);
        println!(
            "  income {:>6} (bucket {:<6}) -> model says {:?}",
            rec.income,
            rec.bucket().text(),
            answer.trim()
        );
    }
}
