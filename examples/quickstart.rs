//! Quickstart: train a miniature ZiGong on synthetic German-credit
//! instruction data and evaluate it against simple baselines.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use zigong::data::german;
use zigong::instruct::render_classification;
use zigong::zigong::{
    balanced_train_records, eval_items, evaluate_classifier, train_zigong, MajorityClass,
    TrainOrder, ZiGongConfig,
};

fn main() {
    // 1. Synthetic German Credit data (schema + class prior of the real
    //    Statlog dataset; see DESIGN.md for the substitution argument).
    let ds = german(600, 42);
    let (train, test) = ds.split(0.2);
    println!(
        "German credit: {} train / {} test records, positive rate {:.2}",
        train.len(),
        test.len(),
        ds.positive_rate()
    );

    // 2. Render Table-1-style instruction examples (class-balanced, as in
    //    the benchmark pipeline) and fine-tune.
    let mut rng = StdRng::seed_from_u64(7);
    let balanced = balanced_train_records(&train, 400, &mut rng);
    let examples: Vec<_> = balanced
        .iter()
        .map(|r| render_classification(&ds, r))
        .collect();
    println!("\nSample prompt:\n{}\n", examples[0].prompt);

    let mut cfg = ZiGongConfig::miniature(42);
    cfg.vocab_size = 500;
    cfg.model.vocab_size = 500;
    cfg.train.epochs = 4;
    cfg.train.pretrain_epochs = 8;
    cfg.train.checkpoint_every = 0;
    println!("Training ZiGong miniature (pretrain + LoRA SFT)…");
    let (mut model, report) = train_zigong(&examples, &cfg, TrainOrder::Shuffled, "ZiGong");
    println!(
        "  {} optimizer steps, loss {:.3} -> {:.3}",
        report.steps,
        report.losses.first().copied().unwrap_or(f32::NAN),
        report.final_loss()
    );

    // 3. Evaluate with the paper's Acc / F1 / Miss protocol plus KS.
    let test_capped: Vec<_> = test.into_iter().take(60).collect();
    let items = eval_items(&ds, &test_capped);
    let r = evaluate_classifier(&mut model, &items);
    println!(
        "\nZiGong     acc={:.3} f1={:.3} miss={:.3} ks={:.3} auc={:.3}",
        r.eval.acc, r.eval.f1, r.eval.miss, r.ks, r.auc
    );
    let train_refs: Vec<&zigong::data::Record> = train.clone();
    let mut majority = MajorityClass::fit(&train_refs);
    let rm = evaluate_classifier(&mut majority, &items);
    println!(
        "Majority   acc={:.3} f1={:.3} miss={:.3}",
        rm.eval.acc, rm.eval.f1, rm.eval.miss
    );

    // 4. Ask the model directly.
    let answer = model.generate_answer(&items[0].example.prompt, 6);
    println!(
        "\nModel answer to the first test prompt: {:?} (gold: {:?})",
        answer.trim(),
        items[0].example.answer
    );
}
