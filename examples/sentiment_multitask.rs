//! Multi-task SFT across the paper's task families (Figure 1): financial
//! sentiment analysis + credit classification trained jointly, then each
//! evaluated with its own protocol — 3-way accuracy for sentiment,
//! Acc/F1/Miss for credit.
//!
//! ```bash
//! cargo run --release --example sentiment_multitask
//! ```

use zigong::data::{german, sentiment_dataset, Sentiment};
use zigong::eval::evaluate_multiclass;
use zigong::instruct::{parse_answer, render_classification, render_sentiment};
use zigong::zigong::{eval_items, evaluate_classifier, train_zigong, TrainOrder, ZiGongConfig};

fn main() {
    // Joint corpus: 150 sentiment + 150 credit instructions.
    let sentiments = sentiment_dataset(180, 21);
    let (sent_train, sent_test) = sentiments.split_at(150);
    let credit = german(400, 21);
    let (credit_train, credit_test) = credit.split(0.2);

    let mut examples: Vec<_> = sent_train
        .iter()
        .enumerate()
        .map(|(i, e)| render_sentiment(e, i))
        .collect();
    examples.extend(
        credit_train
            .iter()
            .take(150)
            .map(|r| render_classification(&credit, r)),
    );
    println!(
        "Joint multi-task corpus: {} instructions across 2 task families",
        examples.len()
    );

    let mut cfg = ZiGongConfig::miniature(21);
    cfg.vocab_size = 520;
    cfg.model.vocab_size = 520;
    cfg.train.pretrain_epochs = 4;
    cfg.train.epochs = 3;
    cfg.train.checkpoint_every = 0;
    let (mut model, report) =
        train_zigong(&examples, &cfg, TrainOrder::Shuffled, "ZiGong-multitask");
    println!(
        "trained: {} steps, loss -> {:.3}\n",
        report.steps,
        report.final_loss()
    );

    // Task 1: sentiment (3-way).
    let candidates: Vec<String> = Sentiment::ALL.iter().map(|s| s.text().into()).collect();
    let mut preds = Vec::new();
    let mut labels = Vec::new();
    for (i, e) in sent_test.iter().enumerate() {
        let ex = render_sentiment(e, i);
        let out = model.generate_answer(&ex.prompt, 6);
        preds.push(parse_answer(&out, &candidates));
        labels.push(
            Sentiment::ALL
                .iter()
                .position(|s| *s == e.label)
                .expect("label"),
        );
    }
    let rs = evaluate_multiclass(&preds, &labels, 3);
    println!(
        "sentiment : acc={:.3} macro-f1={:.3} miss={:.3} (n={})",
        rs.acc, rs.f1, rs.miss, rs.n
    );

    // Task 2: credit scoring (binary, same model).
    let capped: Vec<_> = credit_test.into_iter().take(60).collect();
    let items = eval_items(&credit, &capped);
    let rc = evaluate_classifier(&mut model, &items);
    println!(
        "credit    : acc={:.3} f1={:.3} miss={:.3} ks={:.3} (n={})",
        rc.eval.acc, rc.eval.f1, rc.eval.miss, rc.ks, rc.eval.n
    );
}
