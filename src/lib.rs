//! # zigong — reproduction of *ZiGong 1.0: A Large Language Model for
//! Financial Credit* (ICDE 2025)
//!
//! This umbrella crate re-exports the whole workspace so examples and
//! downstream users can depend on a single crate:
//!
//! - [`tensor`] — tape-based autograd engine (`zg-tensor`)
//! - [`model`] — Mistral-style causal LM (`zg-model`)
//! - [`tokenizer`] — byte-level BPE (`zg-tokenizer`)
//! - [`lora`] — low-rank adapters (`zg-lora`)
//! - [`data`] — synthetic CALM-style financial datasets (`zg-data`)
//! - [`instruct`] — Table 1 templates and answer parsing (`zg-instruct`)
//! - [`influence`] — TracInCP / TracSeq / agent model (`zg-influence`)
//! - [`eval`] — Acc / F1 / Miss / KS / AUC metrics (`zg-eval`)
//! - [`zigong`] — the end-to-end pipeline (`zg-zigong`)
//!
//! ## Quickstart
//!
//! ```
//! use zigong::data::german;
//! use zigong::instruct::render_classification;
//!
//! let ds = german(100, 42);
//! let example = render_classification(&ds, &ds.records[0]);
//! assert!(example.prompt.ends_with("Answer:"));
//! ```
//!
//! See `examples/` for end-to-end training, pruning, and the Behavior
//! Card service, and DESIGN.md / EXPERIMENTS.md for the experiment map.

pub use zg_data as data;
pub use zg_eval as eval;
pub use zg_influence as influence;
pub use zg_instruct as instruct;
pub use zg_lora as lora;
pub use zg_model as model;
pub use zg_tensor as tensor;
pub use zg_tokenizer as tokenizer;
pub use zg_zigong as zigong;
