//! Cross-crate integration tests: the full ZiGong pipeline at smoke scale
//! — data generation → instruction rendering → tokenizer → pretraining →
//! LoRA SFT → evaluation → Behavior Card deployment.
//!
//! Determinism contract (audited): no test in this file reads the wall
//! clock, and every statistical margin below (miss ceilings, tuned-vs-raw
//! comparisons, class separation) is asserted against a *fixed* dataset
//! seed and a *fixed* training seed, so each assertion is a deterministic
//! regression check, not a distributional claim. When changing a seed or
//! epoch count here, re-derive the margin for the new seed instead of
//! loosening it.

use zigong::data::{behavior_sequences, german, BehaviorConfig};
use zigong::instruct::render_classification;
use zigong::model::ModelConfig;
use zigong::zigong::{
    eval_items, evaluate_classifier, split_behavior_by_user, train_zigong, BehaviorCardService,
    LogisticExpert, TrainOrder, ZiGongConfig,
};

/// A toy-but-real SFT config that trains in a few seconds.
fn smoke_config(seed: u64) -> ZiGongConfig {
    let mut cfg = ZiGongConfig::miniature(seed);
    cfg.vocab_size = 380;
    cfg.model.vocab_size = 380;
    cfg.model.d_model = 32;
    cfg.model.n_layers = 1;
    cfg.model.n_heads = 4;
    cfg.model.n_kv_heads = 2;
    cfg.model.d_ff = 64;
    cfg.train.max_seq_len = 96;
    cfg.train.epochs = 3;
    cfg.train.pretrain_epochs = 6;
    cfg.train.checkpoint_every = 0;
    cfg
}

#[test]
fn pipeline_trains_and_answers_parseably() {
    let ds = german(300, 1);
    let (train, test) = ds.split(0.2);
    let examples: Vec<_> = train
        .iter()
        .take(96)
        .map(|r| render_classification(&ds, r))
        .collect();
    let (mut model, report) = train_zigong(&examples, &smoke_config(1), TrainOrder::Shuffled, "it");
    assert!(report.steps > 0);
    assert!(report.final_loss().is_finite());

    let capped: Vec<_> = test.into_iter().take(30).collect();
    let items = eval_items(&ds, &capped);
    let r = evaluate_classifier(&mut model, &items);
    // After pretraining on the corpus the model must at least emit
    // parseable answers on most prompts.
    assert!(r.eval.miss < 0.5, "miss {} too high", r.eval.miss);
    assert!(r.eval.acc > 0.0);
    assert!((0.0..=1.0).contains(&r.ks));
}

#[test]
fn pretraining_reduces_miss_vs_raw_base() {
    let ds = german(200, 2);
    let (train, test) = ds.split(0.2);
    let examples: Vec<_> = train
        .iter()
        .take(64)
        .map(|r| render_classification(&ds, r))
        .collect();
    // Raw base: no pretraining, no SFT steps.
    let mut raw_cfg = smoke_config(3);
    raw_cfg.train.pretrain_epochs = 0;
    raw_cfg.train.epochs = 0;
    let (mut raw, _) = train_zigong(&examples, &raw_cfg, TrainOrder::Shuffled, "raw");
    // Trained model.
    let (mut tuned, _) = train_zigong(&examples, &smoke_config(3), TrainOrder::Shuffled, "tuned");

    let capped: Vec<_> = test.into_iter().take(25).collect();
    let items = eval_items(&ds, &capped);
    let r_raw = evaluate_classifier(&mut raw, &items);
    let r_tuned = evaluate_classifier(&mut tuned, &items);
    assert!(
        r_tuned.eval.miss <= r_raw.eval.miss,
        "training must not increase miss: {} vs {}",
        r_tuned.eval.miss,
        r_raw.eval.miss
    );
}

#[test]
fn behavior_card_serves_trained_zigong() {
    // Deploy an actual ZiGongModel (not just the expert) in the service.
    let ds = behavior_sequences(
        &BehaviorConfig {
            n_users: 60,
            periods: 4,
            ..Default::default()
        },
        4,
    );
    let (train, incoming) = split_behavior_by_user(&ds, 0.2);
    let examples: Vec<_> = train
        .iter()
        .take(80)
        .map(|r| render_classification(&ds, r))
        .collect();
    let (model, _) = train_zigong(
        &examples,
        &smoke_config(5),
        TrainOrder::Chronological,
        "svc",
    );
    let mut service = BehaviorCardService::new(model, &ds, 0.5);
    let decisions = service.score_batch(&incoming);
    assert_eq!(decisions.len(), incoming.len());
    assert!(decisions
        .iter()
        .all(|d| (0.0..=1.0).contains(&d.risk_score)));
    assert_eq!(service.audit_log().len(), incoming.len());
}

#[test]
fn expert_system_interoperates_with_service() {
    let ds = behavior_sequences(
        &BehaviorConfig {
            n_users: 80,
            periods: 4,
            ..Default::default()
        },
        6,
    );
    let (train, incoming) = split_behavior_by_user(&ds, 0.2);
    let expert = LogisticExpert::fit(&train, 7);
    let mut service = BehaviorCardService::new(expert, &ds, 0.5);
    let decisions = service.score_batch(&incoming);
    // The trained expert should separate classes: mean risk of true
    // defaulters above mean risk of good users.
    let (mut bad_sum, mut bad_n, mut good_sum, mut good_n) = (0.0, 0usize, 0.0, 0usize);
    for (r, d) in incoming.iter().zip(&decisions) {
        if r.label {
            bad_sum += d.risk_score;
            bad_n += 1;
        } else {
            good_sum += d.risk_score;
            good_n += 1;
        }
    }
    assert!(bad_n > 0 && good_n > 0);
    assert!(
        bad_sum / bad_n as f64 > good_sum / good_n as f64,
        "defaulters must score riskier"
    );
}

#[test]
fn lm_architecture_variants_train() {
    // GQA vs MHA vs narrow-window configs all must train without panics.
    for (kv, window) in [(2usize, 128usize), (4, 128), (2, 16)] {
        let ds = german(80, 8);
        let examples: Vec<_> = ds
            .records
            .iter()
            .take(32)
            .map(|r| render_classification(&ds, r))
            .collect();
        let mut cfg = smoke_config(9);
        cfg.model = ModelConfig {
            vocab_size: cfg.vocab_size,
            d_model: 32,
            n_layers: 1,
            n_heads: 4,
            n_kv_heads: kv,
            d_ff: 64,
            max_seq_len: 128,
            sliding_window: window,
            rope_theta: 10_000.0,
            rms_eps: 1e-5,
        };
        cfg.train.epochs = 1;
        cfg.train.pretrain_epochs = 1;
        let (_, report) = train_zigong(&examples, &cfg, TrainOrder::Shuffled, "variant");
        assert!(report.final_loss().is_finite(), "kv={kv} window={window}");
    }
}
