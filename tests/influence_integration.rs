//! Integration tests of the influence stack across crates: LM-gradient
//! TracSeq through real SFT checkpoints, and the TracSeq-beats-TracIn
//! property on drifting data.

use zigong::data::{behavior_sequences, BehaviorConfig};
use zigong::influence::{select_top_k, TracConfig};
use zigong::instruct::render_classification;
use zigong::zigong::{
    agent_tracseq_scores, behavior_samples, lm_tracseq_scores, split_behavior_by_user,
    tokenize_all, train_sft, train_tokenizer, TrainOrder, ZiGongConfig,
};

use rand::rngs::StdRng;
use rand::SeedableRng;
use zigong::lora::{attach, LoraConfig};
use zigong::model::CausalLm;

#[test]
fn lm_checkpoint_tracseq_end_to_end() {
    // Train a tiny LoRA model with checkpoints, then score train samples
    // against test samples in the LoRA gradient subspace.
    let ds = behavior_sequences(
        &BehaviorConfig {
            n_users: 30,
            periods: 3,
            ..Default::default()
        },
        1,
    );
    let (train, test) = split_behavior_by_user(&ds, 0.2);
    let train_ex: Vec<_> = train
        .iter()
        .take(40)
        .map(|r| render_classification(&ds, r))
        .collect();
    let test_ex: Vec<_> = test
        .iter()
        .take(6)
        .map(|r| render_classification(&ds, r))
        .collect();

    let cfg = {
        let mut c = ZiGongConfig::miniature(2);
        c.vocab_size = 340;
        c.model.vocab_size = 340;
        c.model.d_model = 32;
        c.model.n_layers = 1;
        c.model.n_heads = 2;
        c.model.n_kv_heads = 1;
        c.model.d_ff = 64;
        c.train.max_seq_len = 96;
        c.train.epochs = 2;
        c.train.checkpoint_every = 2;
        c
    };
    let tokenizer = train_tokenizer(&train_ex, cfg.vocab_size);
    let samples = tokenize_all(&tokenizer, &train_ex, cfg.train.max_seq_len);
    let test_samples = tokenize_all(&tokenizer, &test_ex, cfg.train.max_seq_len);
    let mut rng = StdRng::seed_from_u64(3);
    let mut model_cfg = cfg.model.clone();
    model_cfg.vocab_size = tokenizer.vocab_size();
    let mut lm = CausalLm::new(model_cfg, &mut rng);
    attach(&mut lm, &LoraConfig::default(), &mut rng);
    let report = train_sft(&lm, &samples, &cfg.train, TrainOrder::Chronological, 4);
    assert!(
        !report.checkpoints.is_empty(),
        "SFT must capture checkpoints"
    );

    let train_tok: Vec<_> = samples
        .iter()
        .map(|s| (s.tokens.clone(), s.labels.clone()))
        .collect();
    let test_tok: Vec<_> = test_samples
        .iter()
        .map(|s| (s.tokens.clone(), s.labels.clone()))
        .collect();
    let times: Vec<u32> = samples.iter().map(|s| s.time.unwrap_or(0)).collect();
    let scores = lm_tracseq_scores(&lm, &report.checkpoints, &train_tok, &times, &test_tok, 0.9);
    assert_eq!(scores.len(), train_tok.len());
    assert!(scores.iter().all(|s| s.is_finite()));
    assert!(
        scores.iter().any(|&s| s != 0.0),
        "LoRA-subspace influence must be informative"
    );
    // Top-k selection is well-defined and deterministic.
    let top = select_top_k(&scores, 5);
    assert_eq!(top, select_top_k(&scores, 5));
}

#[test]
fn tracseq_beats_tracin_on_drifting_data() {
    // The paper's central claim at the selection level: with drifting
    // behavior, γ < 1 concentrates the top picks on recent periods, and
    // the recent-period concentration of TracSeq exceeds TracIn's.
    let ds = behavior_sequences(
        &BehaviorConfig {
            n_users: 500,
            periods: 6,
            persistence: 0.45,
            noise_std: 0.4,
            positive_rate: 0.3,
        },
        5,
    );
    let (train, test) = split_behavior_by_user(&ds, 0.2);
    let train_s = behavior_samples(&train);
    let test_s: Vec<(Vec<f32>, bool)> = test
        .iter()
        .map(|r| (r.numeric_features(), r.label))
        .collect();

    let recent_mass = |gamma: f32| -> f64 {
        let scores = agent_tracseq_scores(&train_s, &test_s, gamma, false, 6);
        let top = select_top_k(&scores, train_s.len() / 5);
        let recent = top.iter().filter(|&&i| train_s[i].2 >= 4).count();
        recent as f64 / top.len() as f64
    };
    let seq = recent_mass(0.6);
    let plain = recent_mass(1.0);
    assert!(
        seq >= plain,
        "TracSeq recent-period mass {seq:.3} must be >= TracIn {plain:.3}"
    );
}

#[test]
fn gamma_one_equals_tracin_exactly() {
    let cfg_seq = TracConfig {
        gamma: 1.0,
        current_time: 99,
        decay_samples: false,
    };
    let cfg_plain = TracConfig::tracin();
    // Same gradients, both weightings must coincide.
    let ds = behavior_sequences(
        &BehaviorConfig {
            n_users: 40,
            periods: 3,
            ..Default::default()
        },
        7,
    );
    let (train, test) = split_behavior_by_user(&ds, 0.25);
    let train_s = behavior_samples(&train);
    let test_s: Vec<(Vec<f32>, bool)> = test
        .iter()
        .map(|r| (r.numeric_features(), r.label))
        .collect();
    let a = agent_tracseq_scores(&train_s, &test_s, cfg_seq.gamma, false, 8);
    let b = agent_tracseq_scores(&train_s, &test_s, 1.0, cfg_plain.decay_samples, 8);
    assert_eq!(a, b);
}
