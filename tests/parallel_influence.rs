//! End-to-end determinism of the parallel influence engine through the
//! full pruning pipeline: agent TracSeq scores, hybrid selection, and
//! LM-gradient TracSeq must be bit-identical for every worker count.

use zigong::data::{behavior_sequences, BehaviorConfig};
use zigong::influence::{LmCheckpoint, ParallelConfig};
use zigong::lora::{attach, LoraConfig};
use zigong::model::{CausalLm, ModelConfig};
use zigong::zigong::{
    agent_tracseq_scores, agent_tracseq_scores_with, behavior_samples, hybrid_selection_with,
    lm_tracseq_scores, lm_tracseq_scores_with, split_behavior_by_user,
};

use rand::rngs::StdRng;
use rand::SeedableRng;

type TrainSamples = Vec<(Vec<f32>, bool, u32)>;
type TestSamples = Vec<(Vec<f32>, bool)>;

fn behavior_fixture() -> (TrainSamples, TestSamples) {
    let ds = behavior_sequences(
        &BehaviorConfig {
            n_users: 120,
            periods: 5,
            persistence: 0.6,
            noise_std: 0.4,
            positive_rate: 0.3,
        },
        21,
    );
    let (train, test) = split_behavior_by_user(&ds, 0.2);
    let train_s = behavior_samples(&train);
    let test_s: Vec<(Vec<f32>, bool)> = test
        .iter()
        .map(|r| (r.numeric_features(), r.label))
        .collect();
    (train_s, test_s)
}

#[test]
fn agent_pipeline_scores_identical_for_workers_1_2_8() {
    let (train_s, test_s) = behavior_fixture();
    let reference =
        agent_tracseq_scores_with(&train_s, &test_s, 0.9, false, 5, &ParallelConfig::serial());
    for workers in [1usize, 2, 8] {
        let scores = agent_tracseq_scores_with(
            &train_s,
            &test_s,
            0.9,
            false,
            5,
            &ParallelConfig::serial().with_workers(workers),
        );
        assert_eq!(scores, reference, "workers={workers}");
    }
    // The default entry point (auto parallelism) is the same scores.
    assert_eq!(
        agent_tracseq_scores(&train_s, &test_s, 0.9, false, 5),
        reference
    );
}

#[test]
fn hybrid_selection_identical_for_any_workers() {
    let ds = behavior_sequences(
        &BehaviorConfig {
            n_users: 90,
            periods: 5,
            persistence: 0.6,
            noise_std: 0.4,
            positive_rate: 0.3,
        },
        31,
    );
    let (train, test) = split_behavior_by_user(&ds, 0.2);
    let serial = hybrid_selection_with(&train, &test, 0.9, 150, 7, &ParallelConfig::serial());
    for workers in [2usize, 8] {
        let sel = hybrid_selection_with(
            &train,
            &test,
            0.9,
            150,
            7,
            &ParallelConfig::serial().with_workers(workers),
        );
        assert_eq!(sel, serial, "workers={workers}");
    }
    assert_eq!(serial.len(), 150);
}

fn tiny_lora_lm(seed: u64) -> CausalLm {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cfg = ModelConfig::mistral_miniature(24);
    cfg.n_layers = 1;
    cfg.d_model = 16;
    cfg.n_heads = 2;
    cfg.n_kv_heads = 1;
    cfg.d_ff = 32;
    let mut lm = CausalLm::new(cfg, &mut rng);
    attach(
        &mut lm,
        &LoraConfig {
            rank: 2,
            ..Default::default()
        },
        &mut rng,
    );
    lm
}

#[test]
fn lm_pipeline_scores_identical_serial_vs_parallel() {
    let lm = tiny_lora_lm(3);
    let ck1 = lm.checkpoint();
    for (name, p) in lm.trainable_params() {
        if name.ends_with("lora_b") {
            p.set_data(&vec![0.04; p.numel()]);
        }
    }
    let ck2 = lm.checkpoint();
    let checkpoints = [
        LmCheckpoint {
            store: ck1,
            eta: 0.1,
            time: 0,
        },
        LmCheckpoint {
            store: ck2,
            eta: 0.05,
            time: 1,
        },
    ];
    let train: Vec<(Vec<u32>, Vec<u32>)> = (0..6)
        .map(|i| (vec![1 + i, 5, 7, 3], vec![5, 7, 3, 2]))
        .collect();
    let times: Vec<u32> = (0..6).map(|i| i % 2).collect();
    let test = vec![(vec![2u32, 6, 8], vec![6u32, 8, 2])];

    let serial = lm_tracseq_scores(&lm, &checkpoints, &train, &times, &test, 0.9);
    for workers in [2usize, 4] {
        let par = lm_tracseq_scores_with(
            || tiny_lora_lm(3),
            &checkpoints,
            &train,
            &times,
            &test,
            0.9,
            &ParallelConfig::serial().with_workers(workers),
        );
        assert_eq!(par, serial, "workers={workers}");
    }
}
