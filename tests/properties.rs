//! Property-based tests (proptest) on the core invariants:
//! tokenizer losslessness, metric bounds, autograd linearity, KS/AUC
//! ranges, influence-selection consistency, and parser totality.
//!
//! Determinism contract (audited): the vendored proptest derives its RNG
//! seed from a hash of the test name — never from the wall clock or an
//! OS entropy source — so every property here explores the same inputs
//! on every run and a failure always reproduces byte-for-byte. Keep
//! properties free of time/thread dependence so that stays true.

use proptest::prelude::*;
use zigong::eval::{evaluate_binary, ks_statistic, roc_auc, Prediction};
use zigong::influence::{select_bottom_k, select_top_k};
use zigong::instruct::parse_answer;
use zigong::tensor::Tensor;
use zigong::tokenizer::BpeTokenizer;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Byte-level BPE round-trips arbitrary UTF-8 losslessly.
    #[test]
    fn tokenizer_roundtrip_lossless(text in "\\PC{0,200}") {
        let tok = BpeTokenizer::byte_level();
        prop_assert_eq!(tok.decode(&tok.encode(&text)), text);
    }

    /// A tokenizer trained on any corpus still round-trips unseen text.
    #[test]
    fn trained_tokenizer_roundtrip(corpus in prop::collection::vec("[a-z ]{1,40}", 1..6),
                                   probe in "\\PC{0,120}") {
        let refs: Vec<&str> = corpus.iter().map(String::as_str).collect();
        let tok = BpeTokenizer::train(&refs, 300);
        prop_assert_eq!(tok.decode(&tok.encode(&probe)), probe);
    }

    /// Accuracy, F1, and Miss always land in [0, 1] and miss counts match.
    #[test]
    fn metric_bounds(preds in prop::collection::vec(0..3usize, 1..60),
                     labels in prop::collection::vec(any::<bool>(), 60)) {
        let n = preds.len();
        let preds: Vec<Prediction> = preds.into_iter().map(|p| match p {
            0 => Prediction::Label(false),
            1 => Prediction::Label(true),
            _ => Prediction::Miss,
        }).collect();
        let labels = &labels[..n];
        let r = evaluate_binary(&preds, labels);
        prop_assert!((0.0..=1.0).contains(&r.acc));
        prop_assert!((0.0..=1.0).contains(&r.f1));
        prop_assert!((0.0..=1.0).contains(&r.miss));
        let miss_count = preds.iter().filter(|p| **p == Prediction::Miss).count();
        prop_assert!((r.miss - miss_count as f64 / n as f64).abs() < 1e-12);
    }

    /// KS ∈ [0, 1] and AUC ∈ [0, 1] for any finite score vector.
    #[test]
    fn ks_auc_bounds(scores in prop::collection::vec(-1e3f64..1e3, 2..80),
                     labels in prop::collection::vec(any::<bool>(), 80)) {
        let labels = &labels[..scores.len()];
        let ks = ks_statistic(&scores, labels);
        let auc = roc_auc(&scores, labels);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&ks));
        prop_assert!((-1e-12..=1.0 + 1e-12).contains(&auc));
    }

    /// Shifting all scores by a constant never changes KS or AUC
    /// (threshold metrics are shift-invariant).
    #[test]
    fn ks_shift_invariant(scores in prop::collection::vec(-100f64..100.0, 4..40),
                          labels in prop::collection::vec(any::<bool>(), 40),
                          shift in -50f64..50.0) {
        let labels = &labels[..scores.len()];
        let shifted: Vec<f64> = scores.iter().map(|s| s + shift).collect();
        prop_assert!((ks_statistic(&scores, labels) - ks_statistic(&shifted, labels)).abs() < 1e-9);
        prop_assert!((roc_auc(&scores, labels) - roc_auc(&shifted, labels)).abs() < 1e-9);
    }

    /// Top-k and bottom-k partition consistently: the worst top-k score is
    /// >= the best bottom-k score, and the sets are disjoint when 2k <= n.
    #[test]
    fn topk_bottomk_consistent(scores in prop::collection::vec(-1e3f32..1e3, 2..50)) {
        let k = scores.len() / 2;
        let top = select_top_k(&scores, k);
        let bottom = select_bottom_k(&scores, k);
        if k > 0 {
            let worst_top = top.iter().map(|&i| scores[i]).fold(f32::INFINITY, f32::min);
            let best_bottom = bottom.iter().map(|&i| scores[i]).fold(f32::NEG_INFINITY, f32::max);
            prop_assert!(worst_top >= best_bottom);
            for i in &top {
                prop_assert!(!bottom.contains(i) || scores.len() < 2 * k);
            }
        }
    }

    /// The answer parser is total: any input yields Some(valid index) or None.
    #[test]
    fn parser_total(text in "\\PC{0,80}") {
        let candidates = vec!["Yes".to_string(), "No".to_string(), "maybe so".to_string()];
        if let Some(i) = parse_answer(&text, &candidates) {
            prop_assert!(i < candidates.len());
        }
    }

    /// Autograd: d(sum(a*x))/dx == a for arbitrary tensors (linearity).
    #[test]
    fn autograd_linear_gradient(xs in prop::collection::vec(-10f32..10.0, 1..20),
                                scale in -5f32..5.0) {
        let n = xs.len();
        let x = Tensor::param(xs, [n]);
        x.mul_scalar(scale).sum().backward();
        let g = x.grad().unwrap();
        for v in g {
            prop_assert!((v - scale).abs() < 1e-5);
        }
    }

    /// Autograd: gradients accumulate additively across backward calls.
    #[test]
    fn autograd_grad_accumulation(xs in prop::collection::vec(-5f32..5.0, 1..10)) {
        let n = xs.len();
        let x = Tensor::param(xs, [n]);
        x.sum().backward();
        x.sum().backward();
        let g = x.grad().unwrap();
        for v in g {
            prop_assert!((v - 2.0).abs() < 1e-6);
        }
    }

    /// Softmax rows always sum to 1 and stay in (0, 1].
    #[test]
    fn softmax_simplex(xs in prop::collection::vec(-30f32..30.0, 2..24)) {
        let n = xs.len();
        let x = Tensor::from_vec(xs, [1, n]);
        let y = x.softmax().to_vec();
        let sum: f32 = y.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
        prop_assert!(y.iter().all(|&v| v > 0.0 && v <= 1.0));
    }
}
