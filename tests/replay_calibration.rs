//! Verifies the Table 2 replay machinery against every published cell:
//! the calibrated (TPR, TNR) must reproduce each external model's
//! reported (Acc, F1) under the matching dataset prior, within grid
//! tolerance — except the handful of cells that are mathematically
//! inconsistent with any operating point (documented below).

use zigong::data::all_datasets;
use zigong::zigong::{calibrate, paper_table2};

/// Predicted (acc, f1) under the harness scoring rules.
fn predicted(tpr: f64, tnr: f64, prior: f64, miss: f64) -> (f64, f64) {
    let live = 1.0 - miss;
    let acc = live * (prior * tpr + (1.0 - prior) * tnr);
    let tp = live * prior * tpr;
    let fp = live * (1.0 - prior) * (1.0 - tnr);
    let fn_ = prior * (miss + live * (1.0 - tpr));
    let f1 = if tp == 0.0 {
        0.0
    } else {
        2.0 * tp / (2.0 * tp + fp + fn_)
    };
    (acc, f1)
}

#[test]
fn all_feasible_cells_calibrate() {
    let datasets = all_datasets(1);
    let priors: Vec<f64> = datasets.iter().map(|d| d.positive_rate()).collect();
    let mut feasible = 0usize;
    let mut infeasible: Vec<String> = Vec::new();
    for (model, cells) in paper_table2() {
        for (di, cell) in cells.iter().enumerate() {
            let Some(op) = cell else { continue };
            // FinMA's ccFraud F1 is reported negative (the paper notes the
            // oddity); clamp to 0 for calibration purposes.
            let target_f1 = op.f1.max(0.0);
            let cal = calibrate(op, priors[di]);
            let (acc, f1) = predicted(cal.tpr, cal.tnr, priors[di], op.miss);
            let err = (acc - op.acc).abs() + (f1 - target_f1).abs();
            if err < 0.08 {
                feasible += 1;
            } else {
                infeasible.push(format!(
                    "{model}/{}: target acc={} f1={} got acc={acc:.3} f1={f1:.3}",
                    datasets[di].name, op.acc, op.f1
                ));
            }
        }
    }
    // The published table contains a few cells no (TPR, TNR) pair can
    // produce under *our* synthetic priors (the paper's test sets were
    // partially balanced, footnote of Table 2). Those cells still replay
    // at the nearest feasible point; we only require that the vast
    // majority calibrate tightly.
    assert!(
        feasible >= 40,
        "only {feasible} cells calibrated; failures:\n{}",
        infeasible.join("\n")
    );
}

#[test]
fn zigong_paper_row_is_transcribed() {
    let table = paper_table2();
    let (name, cells) = table.last().expect("non-empty");
    assert!(name.starts_with("ZiGong"));
    let german = cells[0].expect("german cell");
    assert_eq!(german.acc, 0.590);
    assert_eq!(german.f1, 0.587);
    let australia = cells[1].expect("australia cell");
    assert_eq!(australia.acc, 0.779);
    assert_eq!(australia.miss, 0.014);
}

#[test]
fn paper_best_per_dataset_matches_bold() {
    // Sanity on transcription: per the paper, ZiGong is best or
    // second-best on Australia and ccFraud by accuracy.
    let table = paper_table2();
    let zigong = &table.last().expect("rows").1;
    for (di, name) in [(1usize, "Australia"), (3, "ccFraud")] {
        let z = zigong[di].expect("cell").acc;
        let better = table
            .iter()
            .filter(|(m, _)| !m.starts_with("ZiGong"))
            .filter_map(|(_, cells)| cells[di])
            .filter(|op| op.acc > z)
            .count();
        assert!(better <= 1, "{name}: {better} models beat ZiGong's acc");
    }
}
