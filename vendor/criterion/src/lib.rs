//! Offline vendored stand-in for the `criterion` API surface this
//! workspace's benches use (vendor/README.md): `Criterion`,
//! `bench_function`, `benchmark_group`, `Bencher::iter`/`iter_batched`,
//! `BatchSize`, `black_box`, and the `criterion_group!`/
//! `criterion_main!` macros.
//!
//! Measurement model: each benchmark runs a short warm-up, then
//! `sample_size` timed samples of an adaptively chosen iteration batch
//! (targeting ~50ms per sample), and reports min/median/mean per
//! iteration. Honest wall-clock timing, none of criterion's
//! statistics. When `--bench` filters are passed on the command line
//! (cargo does this), only matching benchmark names run.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup; measurement here re-times each
/// routine call individually, so the hint is accepted and ignored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// One recorded benchmark result (per-iteration nanoseconds).
#[derive(Debug, Clone)]
pub struct BenchRecord {
    pub name: String,
    pub min_ns: f64,
    pub median_ns: f64,
    pub mean_ns: f64,
    pub samples: usize,
}

pub struct Criterion {
    sample_size: usize,
    filters: Vec<String>,
    records: Vec<BenchRecord>,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo bench passes "--bench" plus any user filter strings.
        let filters: Vec<String> = std::env::args()
            .skip(1)
            .filter(|a| !a.starts_with('-'))
            .collect();
        Criterion {
            sample_size: 20,
            filters,
            records: Vec::new(),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be >= 2");
        self.sample_size = n;
        self
    }

    fn matches(&self, name: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| name.contains(f))
    }

    pub fn bench_function<F>(&mut self, name: &str, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if !self.matches(name) {
            return self;
        }
        let mut bencher = Bencher {
            samples_wanted: self.sample_size,
            per_iter_ns: Vec::new(),
        };
        body(&mut bencher);
        let mut ns = bencher.per_iter_ns;
        if ns.is_empty() {
            return self;
        }
        ns.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let record = BenchRecord {
            name: name.to_string(),
            min_ns: ns[0],
            median_ns: ns[ns.len() / 2],
            mean_ns: ns.iter().sum::<f64>() / ns.len() as f64,
            samples: ns.len(),
        };
        println!(
            "{:<44} min {:>12}  median {:>12}  mean {:>12}  ({} samples)",
            record.name,
            fmt_ns(record.min_ns),
            fmt_ns(record.median_ns),
            fmt_ns(record.mean_ns),
            record.samples
        );
        self.records.push(record);
        self
    }

    /// Results recorded so far (used by benches that post-process
    /// timings, e.g. to write JSON artifacts).
    pub fn records(&self) -> &[BenchRecord] {
        &self.records
    }

    /// Start a named group; member benchmarks report as `group/member`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A named collection of related benchmarks (criterion's
/// `BenchmarkGroup`): delegates to the parent `Criterion` with the
/// group name prefixed onto each member.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        self.criterion.bench_function(&full, body);
        self
    }

    /// Criterion requires an explicit `finish`; measurement here is
    /// already flushed per bench, so this only consumes the group.
    pub fn finish(self) {}
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

pub struct Bencher {
    samples_wanted: usize,
    per_iter_ns: Vec<f64>,
}

impl Bencher {
    /// Time `routine` adaptively: calibrate a batch count targeting
    /// ~50ms, then record `samples_wanted` timed batches.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up + calibration.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(20));
        let target = Duration::from_millis(50);
        let batch = (target.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as usize;
        for _ in 0..self.samples_wanted {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = t.elapsed();
            self.per_iter_ns
                .push(elapsed.as_nanos() as f64 / batch as f64);
        }
    }

    /// Batched form: `setup` output feeds `routine`; only `routine` is
    /// timed.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.samples_wanted {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.per_iter_ns.push(t.elapsed().as_nanos() as f64);
        }
    }
}

/// Mirror of criterion's group macro: builds `fn $group_name()` that
/// runs each target against the configured `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Mirror of criterion's main macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("sum_1000", |b| {
            b.iter(|| (0..1000u64).map(black_box).sum::<u64>())
        });
        c.bench_function("batched_reverse", |b| {
            b.iter_batched(
                || (0..100u32).collect::<Vec<_>>(),
                |mut v| {
                    v.reverse();
                    v
                },
                BatchSize::SmallInput,
            )
        });
    }

    #[test]
    fn groups_prefix_member_names() {
        let mut c = Criterion::default().sample_size(2);
        c.filters.clear();
        let mut g = c.benchmark_group("grp");
        g.bench_function(format!("n{}", 32), |b| b.iter(|| black_box(1 + 1)));
        g.finish();
        assert_eq!(c.records().len(), 1);
        assert_eq!(c.records()[0].name, "grp/n32");
    }

    #[test]
    fn records_timings() {
        let mut c = Criterion::default().sample_size(5);
        c.filters.clear(); // test harness args are not bench filters
        sample_bench(&mut c);
        assert_eq!(c.records().len(), 2);
        for r in c.records() {
            assert!(r.min_ns > 0.0 && r.min_ns <= r.mean_ns * 1.5);
            assert_eq!(r.samples, 5);
        }
    }
}
