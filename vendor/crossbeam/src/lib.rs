//! Offline vendored stand-in for `crossbeam`'s scoped threads
//! (vendor/README.md), implemented over `std::thread::scope` (stable
//! since Rust 1.63). The crossbeam 0.8 `thread::scope` API returns
//! `Result` and the scope hands out `ScopedJoinHandle`s whose `join`
//! also returns `Result`; both are mirrored here so call sites read
//! identically with the real crate.

pub mod thread {
    use std::thread::Scope as StdScope;
    use std::thread::ScopedJoinHandle as StdHandle;

    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope StdScope<'scope, 'env>,
    }

    pub struct ScopedJoinHandle<'scope, T> {
        inner: StdHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Join the thread. `Err` carries the thread's panic payload,
        /// like crossbeam.
        pub fn join(self) -> Result<T, Box<dyn std::any::Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce() -> T + Send + 'scope,
            T: Send + 'scope,
        {
            ScopedJoinHandle {
                inner: self.inner.spawn(f),
            }
        }
    }

    /// Run `f` with a scope in which borrowed-data threads can be
    /// spawned; all are joined before `scope` returns. The outer
    /// `Result` mirrors crossbeam (Err = some unjoined child panicked —
    /// std::thread::scope propagates those panics instead, so here it
    /// is always `Ok`).
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join_in_order() {
        let data = [1u64, 2, 3, 4];
        let chunks: Vec<&[u64]> = data.chunks(2).collect();
        let sums = super::thread::scope(|s| {
            let handles: Vec<_> = chunks
                .iter()
                .map(|c| s.spawn(move || c.iter().sum::<u64>()))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("no panic"))
                .collect::<Vec<u64>>()
        })
        .expect("scope ok");
        assert_eq!(sums, vec![3, 7]);
    }
}
