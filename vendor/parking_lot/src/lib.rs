//! Offline vendored stand-in for `parking_lot` (vendor/README.md):
//! [`Mutex`] and [`RwLock`] with parking_lot's non-poisoning API,
//! implemented over `std::sync`. Poisoned std locks are recovered via
//! `into_inner` semantics (parking_lot has no poisoning at all, so
//! recovering preserves its contract).

use std::sync::{
    Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// Non-poisoning mutex with parking_lot's `lock()` signature.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

/// Non-poisoning reader-writer lock with parking_lot's
/// `read()`/`write()` signatures.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: StdRwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock {
            inner: StdRwLock::new(value),
        }
    }

    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
