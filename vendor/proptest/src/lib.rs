//! Offline vendored stand-in for the parts of `proptest` this
//! workspace uses (vendor/README.md).
//!
//! Design: a [`Strategy`] is anything that can generate a value from a
//! deterministic RNG. The [`proptest!`] macro expands each property fn
//! into a `#[test]` that seeds an RNG from the test's name and runs
//! `config.cases` generated cases; `prop_assert!`/`prop_assert_eq!`
//! fail the case with a message carrying the case number. There is no
//! shrinking — a failing case prints its inputs via the assertion
//! message instead.
//!
//! Supported strategies: integer/float ranges, `any::<T>()` for
//! primitives, `prop::collection::vec`, and string-literal patterns
//! restricted to the regex subset `unit{m,n}` where unit is `\PC`
//! (printable non-control), a `[...]` class of chars and `a-z` ranges,
//! or a literal char.

use rand::rngs::StdRng;
use rand::Rng;

pub use rand::SeedableRng;

/// The RNG handed to strategies (deterministic per test).
pub type TestRng = StdRng;

/// FNV-1a — stable seed derivation from a test name.
pub fn seed_of(name: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// A failed property case.
#[derive(Debug)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError { msg: msg.into() }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

/// Runner configuration (only `cases` is honored).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Value generator.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen_bool(0.5)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen_range(<$t>::MIN..=<$t>::MAX)
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen_range(-1e6f32..1e6)
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen_range(-1e12f64..1e12)
    }
}

pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

// ---- string pattern strategies ----------------------------------------

enum CharClass {
    /// `\PC`: any printable (non-control) char.
    Printable,
    /// `[...]`: explicit chars and inclusive ranges.
    Set(Vec<(char, char)>),
    /// A literal char.
    Literal(char),
}

struct PatternUnit {
    class: CharClass,
    min: usize,
    max: usize,
}

fn sample_printable(rng: &mut TestRng) -> char {
    // Mix of ASCII, Latin/Greek, CJK, and symbols — all non-control,
    // exercising 1–4 byte UTF-8.
    let bucket = rng.gen_range(0..100u32);
    let c = match bucket {
        0..=69 => rng.gen_range(0x20u32..0x7F),
        70..=84 => rng.gen_range(0xA0u32..0x250),
        85..=94 => rng.gen_range(0x4E00u32..0x9FFF),
        _ => rng.gen_range(0x1F300u32..0x1F5FF),
    };
    char::from_u32(c).expect("ranges avoid surrogates")
}

fn parse_pattern(pattern: &str) -> Vec<PatternUnit> {
    let mut chars = pattern.chars().peekable();
    let mut units = Vec::new();
    while let Some(c) = chars.next() {
        let class = match c {
            '\\' => match chars.next() {
                Some('P') => {
                    let prop = chars.next();
                    assert_eq!(
                        prop,
                        Some('C'),
                        "proptest stub: only \\PC is supported, got \\P{prop:?}"
                    );
                    CharClass::Printable
                }
                Some(escaped) => CharClass::Literal(escaped),
                None => panic!("proptest stub: dangling backslash in {pattern:?}"),
            },
            '[' => {
                let mut set = Vec::new();
                loop {
                    match chars.next() {
                        Some(']') => break,
                        Some(lo) => {
                            if chars.peek() == Some(&'-') {
                                chars.next();
                                let hi = chars.next().unwrap_or_else(|| {
                                    panic!("proptest stub: bad range in {pattern:?}")
                                });
                                assert!(hi != ']', "proptest stub: bad range in {pattern:?}");
                                set.push((lo, hi));
                            } else {
                                set.push((lo, lo));
                            }
                        }
                        None => panic!("proptest stub: unterminated [ in {pattern:?}"),
                    }
                }
                CharClass::Set(set)
            }
            other => CharClass::Literal(other),
        };
        // Optional {n} / {m,n} repetition.
        let (min, max) = if chars.peek() == Some(&'{') {
            chars.next();
            let mut spec = String::new();
            for c in chars.by_ref() {
                if c == '}' {
                    break;
                }
                spec.push(c);
            }
            match spec.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse().expect("pattern repeat min"),
                    n.trim().parse().expect("pattern repeat max"),
                ),
                None => {
                    let n = spec.trim().parse().expect("pattern repeat count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        units.push(PatternUnit { class, min, max });
    }
    units
}

impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let units = parse_pattern(self);
        let mut out = String::new();
        for unit in &units {
            let count = rng.gen_range(unit.min..=unit.max);
            for _ in 0..count {
                match &unit.class {
                    CharClass::Printable => out.push(sample_printable(rng)),
                    CharClass::Literal(c) => out.push(*c),
                    CharClass::Set(set) => {
                        let (lo, hi) = set[rng.gen_range(0..set.len())];
                        let c = rng.gen_range(lo as u32..=hi as u32);
                        out.push(char::from_u32(c).expect("valid class range"));
                    }
                }
            }
        }
        out
    }
}

// ---- collections -------------------------------------------------------

/// Sizes acceptable to `collection::vec`: a fixed len, a range, or an
/// inclusive range.
pub trait IntoSizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize;
}

impl IntoSizeRange for usize {
    fn pick(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl IntoSizeRange for std::ops::Range<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.clone())
    }
}

impl IntoSizeRange for std::ops::RangeInclusive<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.clone())
    }
}

pub struct VecStrategy<S, L> {
    element: S,
    len: L,
}

impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.len.pick(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

pub mod collection {
    use super::{IntoSizeRange, Strategy, VecStrategy};

    /// `prop::collection::vec(element, len)`.
    pub fn vec<S: Strategy, L: IntoSizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }
}

/// The `prop::` namespace as the prelude exposes it.
pub mod prop {
    pub use crate::collection;
}

pub mod prelude {
    pub use crate::{any, prop, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

/// Fail the current property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fail the current property case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(lhs == rhs) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($a),
                stringify!($b),
                lhs,
                rhs
            )));
        }
    }};
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (cfg = ($cfg:expr)
     $(
         $(#[$meta:meta])*
         fn $name:ident($($parm:pat in $strategy:expr),+ $(,)?) $body:block
     )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng: $crate::TestRng =
                    <$crate::TestRng as $crate::SeedableRng>::seed_from_u64(
                        $crate::seed_of(stringify!($name)),
                    );
                for case in 0..config.cases {
                    $(let $parm = $crate::Strategy::generate(&$strategy, &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest {} failed at case {}/{}:\n{}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            e
                        );
                    }
                }
            }
        )*
    };
}

/// The property-test macro: each fn inside becomes a `#[test]` running
/// `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { cfg = ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { cfg = ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in -5f64..5.0, n in 1..10usize) {
            prop_assert!((-5.0..5.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn vec_lengths_respected(v in prop::collection::vec(any::<bool>(), 3..7)) {
            prop_assert!(v.len() >= 3 && v.len() < 7);
        }

        #[test]
        fn fixed_len_vec(v in prop::collection::vec(0..100usize, 5)) {
            prop_assert_eq!(v.len(), 5);
            for x in &v {
                prop_assert!(*x < 100);
            }
        }

        #[test]
        fn string_patterns(s in "[a-z ]{1,40}", t in "\\PC{0,20}") {
            prop_assert!(!s.is_empty() && s.len() <= 40);
            prop_assert!(s.chars().all(|c| c == ' ' || c.is_ascii_lowercase()));
            prop_assert!(t.chars().count() <= 20);
            prop_assert!(t.chars().all(|c| !c.is_control()));
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = <crate::TestRng as crate::SeedableRng>::seed_from_u64(crate::seed_of("x"));
        let mut b = <crate::TestRng as crate::SeedableRng>::seed_from_u64(crate::seed_of("x"));
        let sa = "\\PC{0,50}".generate(&mut a);
        let sb = "\\PC{0,50}".generate(&mut b);
        assert_eq!(sa, sb);
    }
}
