//! Offline vendored stand-in for the parts of `rand` 0.8 this workspace
//! uses. The build container has no network access and no crates-io
//! cache, so the workspace vendors a minimal, deterministic
//! implementation instead (vendor/README.md).
//!
//! Implemented surface: [`Rng`] (`gen`, `gen_range`, `gen_bool`),
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`] (xoshiro256**
//! seeded via SplitMix64), and [`seq::SliceRandom`]
//! (`shuffle`/`choose`).
//!
//! Streams are deterministic per seed but are NOT the same streams as
//! crates-io `rand`; everything in-repo derives its expectations from
//! this implementation, so cross-version stream equality is never
//! relied on.

use std::ops::{Range, RangeInclusive};

/// Core entropy source: a 64-bit generator.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A uniform f64 in `[0, 1)` with 53 random bits.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types samplable by [`Rng::gen`] (the `Standard` distribution in real
/// rand).
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng) as f32
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let v = self.start + (self.end - self.start) * unit_f64(rng) as $t;
                // Guard against rounding up onto the exclusive bound.
                if v < self.end { v } else { <$t>::next_down(self.end).max(self.start) }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                lo + (hi - lo) * unit_f64(rng) as $t
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// User-facing sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    fn gen_range<T, RA: SampleRange<T>>(&mut self, range: RA) -> T
    where
        Self: Sized,
    {
        range.sample_one(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0,1]");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators (only `seed_from_u64` is used in this workspace).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64 — used to expand a u64 seed into xoshiro state.
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Deterministic xoshiro256** generator standing in for rand's
    /// `StdRng`. Statistically strong for experiment/test purposes;
    /// not cryptographic (neither is the real `StdRng` contract).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for v in &mut s {
                *v = splitmix64(&mut sm);
            }
            // All-zero state would be degenerate; splitmix never yields
            // four zeros for any input, but stay defensive.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E3779B97F4A7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::{RngCore, SampleRange};

    /// Slice shuffling and choosing (Fisher–Yates).
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (0..=i).sample_one(rng);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = (0..self.len()).sample_one(rng);
                Some(&self[i])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&v));
            let i = rng.gen_range(1..=28u32);
            assert!((1..=28).contains(&i));
            let u: f32 = rng.gen_range(f32::EPSILON..1.0);
            assert!((f32::EPSILON..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_rate_reasonable() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
