//! Offline vendored stand-in for the parts of `serde` this workspace
//! uses (vendor/README.md). Instead of real serde's generic
//! `Serializer`/`Deserializer` visitor architecture, this stub uses a
//! concrete JSON-like [`Value`] data model: `Serialize` lowers to a
//! `Value`, `Deserialize` lifts from one. All in-repo consumers go
//! through `serde_json`, so the simplification is observationally
//! equivalent for this codebase:
//!
//! - named structs serialize to objects (field order = declaration
//!   order);
//! - enums are externally tagged: unit variants as strings, tuple
//!   variants as `{"Variant": value}` / `{"Variant": [values]}`;
//! - `#[serde(skip)]` fields are omitted on write, `Default`ed on read;
//! - missing fields read as `Null`, which only `Option` accepts.

pub use serde_derive::{Deserialize, Serialize};

pub mod value;

pub use value::{Map, Value};

/// Serialization/deserialization error: a message plus a context path
/// accumulated on the way out of nested `from_value` calls.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
    path: Vec<String>,
}

impl Error {
    pub fn custom(msg: impl Into<String>) -> Self {
        Error {
            msg: msg.into(),
            path: Vec::new(),
        }
    }

    /// Prepend a field/element context to the error path.
    pub fn ctx(mut self, segment: impl Into<String>) -> Self {
        self.path.insert(0, segment.into());
        self
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.path.is_empty() {
            write!(f, "{}", self.msg)
        } else {
            write!(f, "{}: {}", self.path.join("."), self.msg)
        }
    }
}

impl std::error::Error for Error {}

impl From<Error> for std::io::Error {
    fn from(e: Error) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e)
    }
}

/// Lower a Rust value into the JSON-like data model.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Lift a Rust value out of the JSON-like data model.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---- Serialize impls ---------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
    )*};
}
ser_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Num(*self as f64)
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Num(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
    )*};
}
ser_tuple! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

// ---- Deserialize impls -------------------------------------------------

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool()
            .ok_or_else(|| Error::custom(format!("expected bool, got {}", v.kind())))
    }
}

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_f64().ok_or_else(|| {
                    Error::custom(format!("expected number, got {}", v.kind()))
                })?;
                if n.fract() != 0.0 {
                    return Err(Error::custom(format!("expected integer, got {n}")));
                }
                if n < <$t>::MIN as f64 || n > <$t>::MAX as f64 {
                    return Err(Error::custom(format!(
                        "integer {n} out of range for {}",
                        stringify!($t)
                    )));
                }
                Ok(n as $t)
            }
        }
    )*};
}
de_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .map(|n| n as f32)
            .ok_or_else(|| Error::custom(format!("expected number, got {}", v.kind())))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .ok_or_else(|| Error::custom(format!("expected number, got {}", v.kind())))
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::custom(format!("expected string, got {}", v.kind())))
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let arr = v
            .as_array()
            .ok_or_else(|| Error::custom(format!("expected array, got {}", v.kind())))?;
        arr.iter()
            .enumerate()
            .map(|(i, e)| T::from_value(e).map_err(|err| err.ctx(format!("[{i}]"))))
            .collect()
    }
}

macro_rules! de_tuple {
    ($(($len:literal; $($n:tt $t:ident),+))*) => {$(
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let arr = v.as_array().ok_or_else(|| {
                    Error::custom(format!("expected {}-tuple array, got {}", $len, v.kind()))
                })?;
                if arr.len() != $len {
                    return Err(Error::custom(format!(
                        "expected {}-tuple, got array of {}",
                        $len,
                        arr.len()
                    )));
                }
                Ok(($($t::from_value(&arr[$n]).map_err(|e| e.ctx(format!("[{}]", $n)))?,)+))
            }
        }
    )*};
}
de_tuple! {
    (2; 0 A, 1 B)
    (3; 0 A, 1 B, 2 C)
    (4; 0 A, 1 B, 2 C, 3 D)
    (5; 0 A, 1 B, 2 C, 3 D, 4 E)
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
