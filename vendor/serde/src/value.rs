//! The JSON data model shared by the `serde` and `serde_json` stubs.

use std::collections::BTreeMap;

/// Object maps are ordered by key (like default serde_json).
pub type Map = BTreeMap<String, Value>;

/// A JSON value. Numbers are stored as `f64`; every integer this
/// workspace serializes is well within the 2^53 exact range.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    String(String),
    Array(Vec<Value>),
    Object(Map),
}

impl Value {
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Num(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Num(n) if n.fract() == 0.0 => Some(*n as i64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object field lookup (`None` for non-objects/missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, i: usize) -> &Value {
        self.as_array().and_then(|a| a.get(i)).unwrap_or(&NULL)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

impl PartialEq<i64> for Value {
    fn eq(&self, other: &i64) -> bool {
        self.as_i64() == Some(*other)
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl std::fmt::Display for Value {
    /// Compact JSON rendering.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", write_json(self, None, 0))
    }
}

pub(crate) fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn fmt_num(n: f64) -> String {
    if n.is_finite() {
        // Rust's f64 Display prints integral values without ".0" and
        // round-trips exactly — both fine for JSON.
        if n == n.trunc() && n.abs() < 1e15 {
            format!("{}", n as i64)
        } else {
            format!("{n}")
        }
    } else {
        // JSON has no non-finite literals; match serde_json's refusal by
        // emitting null.
        "null".to_string()
    }
}

/// Serialize to JSON text (entry point for the `serde_json` stub).
/// `indent = Some(step)` pretty-prints.
pub fn write_json_public(v: &Value, indent: Option<usize>) -> String {
    write_json(v, indent, 0)
}

/// Serialize to JSON text. `indent = Some(step)` pretty-prints.
pub(crate) fn write_json(v: &Value, indent: Option<usize>, level: usize) -> String {
    let mut out = String::new();
    write_json_into(v, indent, level, &mut out);
    out
}

fn write_json_into(v: &Value, indent: Option<usize>, level: usize, out: &mut String) {
    let (nl, pad, pad_in) = match indent {
        Some(step) => (
            "\n",
            " ".repeat(step * level),
            " ".repeat(step * (level + 1)),
        ),
        None => ("", String::new(), String::new()),
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) => out.push_str(&fmt_num(*n)),
        Value::String(s) => escape_into(s, out),
        Value::Array(a) => {
            if a.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, e) in a.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                write_json_into(e, indent, level + 1, out);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(m) => {
            if m.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, e)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                escape_into(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_json_into(e, indent, level + 1, out);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push('}');
        }
    }
}
