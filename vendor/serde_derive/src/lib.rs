//! Offline vendored `#[derive(Serialize)]` / `#[derive(Deserialize)]`
//! for the serde stub (vendor/README.md). Implemented directly on
//! `proc_macro` tokens — no `syn`/`quote` available offline.
//!
//! Supported input shapes (everything this workspace derives on):
//! - named-field structs, optionally with lifetime-only generics;
//! - enums with unit and tuple variants (externally tagged, like real
//!   serde: `"Variant"`, `{"Variant": v}`, `{"Variant": [v0, v1]}`);
//! - the `#[serde(skip)]` field attribute (omit on serialize,
//!   `Default::default()` on deserialize).
//!
//! Anything else (tuple structs, struct variants, type-parameter
//! generics) panics with a clear message at expansion time rather than
//! emitting wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    skip: bool,
}

enum VariantKind {
    Unit,
    Tuple(usize),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Input {
    Struct {
        name: String,
        generics: String,
        fields: Vec<Field>,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Consume attributes (`#[...]`), returning whether any was
/// `#[serde(skip)]`-ish.
fn eat_attrs(iter: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) -> bool {
    let mut skip = false;
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                match iter.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                        let mut inner = g.stream().into_iter();
                        if let Some(TokenTree::Ident(id)) = inner.next() {
                            if id.to_string() == "serde" {
                                if let Some(TokenTree::Group(args)) = inner.next() {
                                    let txt = args.stream().to_string();
                                    if txt.split(',').any(|a| a.trim().starts_with("skip")) {
                                        skip = true;
                                    } else {
                                        panic!(
                                            "serde stub derive: unsupported serde attribute \
                                             #[serde({txt})] — only `skip` is implemented"
                                        );
                                    }
                                }
                            }
                        }
                    }
                    other => panic!("serde stub derive: malformed attribute near {other:?}"),
                }
            }
            _ => return skip,
        }
    }
}

/// Consume a visibility qualifier if present (`pub`, `pub(crate)`, ...).
fn eat_vis(iter: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    if let Some(TokenTree::Ident(id)) = iter.peek() {
        if id.to_string() == "pub" {
            iter.next();
            if let Some(TokenTree::Group(g)) = iter.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    iter.next();
                }
            }
        }
    }
}

/// Skip tokens of one type expression: everything up to a comma at
/// angle-bracket depth zero. Parens/brackets are `Group`s, so only `<>`
/// need explicit depth tracking.
fn eat_type(iter: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    let mut depth = 0i32;
    while let Some(tt) = iter.peek() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => return,
            _ => {}
        }
        iter.next();
    }
}

fn parse_named_fields(body: TokenStream) -> Vec<Field> {
    let mut iter = body.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        let skip = eat_attrs(&mut iter);
        eat_vis(&mut iter);
        let name = match iter.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => return fields,
            other => panic!("serde stub derive: expected field name, got {other:?}"),
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde stub derive: expected ':' after field, got {other:?}"),
        }
        eat_type(&mut iter);
        fields.push(Field { name, skip });
        // Trailing comma (or end).
        if let Some(TokenTree::Punct(p)) = iter.peek() {
            if p.as_char() == ',' {
                iter.next();
            }
        }
    }
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let mut iter = body.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        eat_attrs(&mut iter);
        let name = match iter.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => return variants,
            other => panic!("serde stub derive: expected variant name, got {other:?}"),
        };
        let kind = match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let stream = g.stream();
                iter.next();
                // Count top-level type slots inside the parens.
                let mut inner = stream.into_iter().peekable();
                let mut arity = 0usize;
                while inner.peek().is_some() {
                    eat_attrs(&mut inner);
                    eat_vis(&mut inner);
                    if inner.peek().is_none() {
                        break;
                    }
                    eat_type(&mut inner);
                    arity += 1;
                    if let Some(TokenTree::Punct(p)) = inner.peek() {
                        if p.as_char() == ',' {
                            inner.next();
                        }
                    }
                }
                VariantKind::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                panic!("serde stub derive: struct variants are not supported ({name})")
            }
            _ => VariantKind::Unit,
        };
        variants.push(Variant { name, kind });
        if let Some(TokenTree::Punct(p)) = iter.peek() {
            if p.as_char() == ',' {
                iter.next();
            }
        }
    }
}

fn parse_input(input: TokenStream) -> Input {
    let mut iter = input.into_iter().peekable();
    eat_attrs(&mut iter);
    eat_vis(&mut iter);
    let kw = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde stub derive: expected struct/enum, got {other:?}"),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde stub derive: expected type name, got {other:?}"),
    };
    // Lifetime-only generics: capture verbatim between < and >.
    let mut generics = String::new();
    if let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() == '<' {
            iter.next();
            let mut depth = 1i32;
            for tt in iter.by_ref() {
                match &tt {
                    TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                    TokenTree::Punct(p) if p.as_char() == '>' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                generics.push_str(&tt.to_string());
                // No space after a lifetime quote: `' a` does not lex.
                if !matches!(&tt, TokenTree::Punct(p) if p.as_char() == '\'') {
                    generics.push(' ');
                }
            }
            if generics
                .split_whitespace()
                .any(|t| t.chars().next().is_some_and(|c| c.is_alphabetic()) && t != "'")
                && !generics.contains('\'')
            {
                panic!(
                    "serde stub derive: type-parameter generics are not supported on {name}<{generics}>"
                );
            }
        }
    }
    match kw.as_str() {
        "struct" => match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Input::Struct {
                name,
                generics,
                fields: parse_named_fields(g.stream()),
            },
            other => panic!(
                "serde stub derive: only named-field structs are supported ({name}, got {other:?})"
            ),
        },
        "enum" => match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Input::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            other => panic!("serde stub derive: malformed enum {name}: {other:?}"),
        },
        other => panic!("serde stub derive: unsupported item kind `{other}`"),
    }
}

fn impl_header(trait_name: &str, name: &str, generics: &str) -> String {
    if generics.is_empty() {
        format!("impl ::serde::{trait_name} for {name} {{")
    } else {
        format!("impl<{generics}> ::serde::{trait_name} for {name}<{generics}> {{")
    }
}

fn derive_serialize_impl(input: Input) -> String {
    match input {
        Input::Struct {
            name,
            generics,
            fields,
        } => {
            let mut body = String::new();
            body.push_str("let mut m = ::serde::Map::new();\n");
            for f in fields.iter().filter(|f| !f.skip) {
                body.push_str(&format!(
                    "m.insert(::std::string::String::from(\"{n}\"), \
                     ::serde::Serialize::to_value(&self.{n}));\n",
                    n = f.name
                ));
            }
            body.push_str("::serde::Value::Object(m)");
            format!(
                "{}\nfn to_value(&self) -> ::serde::Value {{\n{}\n}}\n}}",
                impl_header("Serialize", &name, &generics),
                body
            )
        }
        Input::Enum { name, variants } => {
            let mut arms = String::new();
            for v in &variants {
                match v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{v} => ::serde::Value::String(\
                         ::std::string::String::from(\"{v}\")),\n",
                        v = v.name
                    )),
                    VariantKind::Tuple(1) => arms.push_str(&format!(
                        "{name}::{v}(f0) => {{\
                         let mut m = ::serde::Map::new();\
                         m.insert(::std::string::String::from(\"{v}\"), \
                         ::serde::Serialize::to_value(f0));\
                         ::serde::Value::Object(m) }},\n",
                        v = v.name
                    )),
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..n).map(|i| format!("f{i}")).collect();
                        let elems: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{v}({bind}) => {{\
                             let mut m = ::serde::Map::new();\
                             m.insert(::std::string::String::from(\"{v}\"), \
                             ::serde::Value::Array(vec![{elems}]));\
                             ::serde::Value::Object(m) }},\n",
                            v = v.name,
                            bind = binds.join(", "),
                            elems = elems.join(", ")
                        ));
                    }
                }
            }
            format!(
                "{}\nfn to_value(&self) -> ::serde::Value {{\nmatch self {{\n{}}}\n}}\n}}",
                impl_header("Serialize", &name, ""),
                arms
            )
        }
    }
}

fn derive_deserialize_impl(input: Input) -> String {
    match input {
        Input::Struct {
            name,
            generics,
            fields,
        } => {
            if !generics.is_empty() {
                panic!("serde stub derive: Deserialize on generic struct {name} is not supported");
            }
            let mut inits = String::new();
            for f in &fields {
                if f.skip {
                    inits.push_str(&format!(
                        "{}: ::core::default::Default::default(),\n",
                        f.name
                    ));
                } else {
                    inits.push_str(&format!(
                        "{n}: ::serde::Deserialize::from_value(\
                         obj.get(\"{n}\").unwrap_or(&::serde::Value::Null))\
                         .map_err(|e| e.ctx(\"{name}.{n}\"))?,\n",
                        n = f.name
                    ));
                }
            }
            format!(
                "{header}\n\
                 fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 let obj = v.as_object().ok_or_else(|| ::serde::Error::custom(\
                 format!(\"expected object for struct {name}, got {{}}\", v.kind())))?;\n\
                 ::std::result::Result::Ok({name} {{\n{inits}}})\n}}\n}}",
                header = impl_header("Deserialize", &name, &generics),
            )
        }
        Input::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in &variants {
                match v.kind {
                    VariantKind::Unit => unit_arms.push_str(&format!(
                        "\"{v}\" => ::std::result::Result::Ok({name}::{v}),\n",
                        v = v.name
                    )),
                    VariantKind::Tuple(1) => tagged_arms.push_str(&format!(
                        "\"{v}\" => ::std::result::Result::Ok({name}::{v}(\
                         ::serde::Deserialize::from_value(val)\
                         .map_err(|e| e.ctx(\"{name}::{v}\"))?)),\n",
                        v = v.name
                    )),
                    VariantKind::Tuple(n) => {
                        let elems: Vec<String> = (0..n)
                            .map(|i| {
                                format!(
                                    "::serde::Deserialize::from_value(&arr[{i}])\
                                     .map_err(|e| e.ctx(\"{name}::{v}[{i}]\"))?",
                                    v = v.name
                                )
                            })
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{v}\" => {{\
                             let arr = val.as_array().ok_or_else(|| ::serde::Error::custom(\
                             \"expected array for variant {v}\"))?;\
                             if arr.len() != {n} {{ return ::std::result::Result::Err(\
                             ::serde::Error::custom(\"wrong arity for variant {v}\")); }}\
                             ::std::result::Result::Ok({name}::{v}({elems})) }},\n",
                            v = v.name,
                            elems = elems.join(", ")
                        ));
                    }
                }
            }
            format!(
                "{header}\n\
                 fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 match v {{\n\
                 ::serde::Value::String(s) => match s.as_str() {{\n{unit_arms}\
                 other => ::std::result::Result::Err(::serde::Error::custom(\
                 format!(\"unknown variant {{other}} for enum {name}\"))),\n}},\n\
                 ::serde::Value::Object(m) => {{\n\
                 let (tag, val) = m.iter().next().ok_or_else(|| ::serde::Error::custom(\
                 \"empty object for enum {name}\"))?;\n\
                 match tag.as_str() {{\n{tagged_arms}\
                 other => ::std::result::Result::Err(::serde::Error::custom(\
                 format!(\"unknown variant {{other}} for enum {name}\"))),\n}}\n}},\n\
                 other => ::std::result::Result::Err(::serde::Error::custom(\
                 format!(\"expected string or object for enum {name}, got {{}}\", other.kind()))),\n\
                 }}\n}}\n}}",
                header = impl_header("Deserialize", &name, ""),
            )
        }
    }
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    derive_serialize_impl(parse_input(input))
        .parse()
        .expect("serde stub derive: generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    derive_deserialize_impl(parse_input(input))
        .parse()
        .expect("serde stub derive: generated invalid Deserialize impl")
}
