//! Offline vendored stand-in for the parts of `serde_json` this
//! workspace uses (vendor/README.md): [`Value`], [`to_string`],
//! [`to_string_pretty`], [`to_writer`], [`from_str`], and the [`json!`]
//! macro (object/array/expression forms).

use std::io::Write;

pub use serde::{Error, Map, Value};

use serde::{Deserialize, Serialize};

pub type Result<T> = std::result::Result<T, Error>;

/// Lower any serializable value to the [`Value`] data model.
pub fn to_value<T: Serialize + ?Sized>(v: &T) -> Value {
    v.to_value()
}

/// Compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(v: &T) -> Result<String> {
    Ok(serde::value::write_json_public(&v.to_value(), None))
}

/// Pretty JSON text (2-space indent, like serde_json's default).
pub fn to_string_pretty<T: Serialize + ?Sized>(v: &T) -> Result<String> {
    Ok(serde::value::write_json_public(&v.to_value(), Some(2)))
}

/// Compact JSON to a writer.
pub fn to_writer<W: Write, T: Serialize + ?Sized>(mut w: W, v: &T) -> Result<()> {
    w.write_all(to_string(v)?.as_bytes())
        .map_err(|e| Error::custom(format!("io error: {e}")))
}

/// Parse JSON text into any deserializable type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = parse_value(s)?;
    T::from_value(&value)
}

// ---- parser ------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_lit(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_lit("null") => Ok(Value::Null),
            Some(b't') if self.eat_lit("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_lit("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error::custom(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|b| {
            b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-'
        }) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|t| t.parse::<f64>().ok())
            .map(Value::Num)
            .ok_or_else(|| Error::custom(format!("invalid number at byte {start}")))
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::custom("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| Error::custom("bad \\u escape"))?;
                            self.pos += 4;
                            if (0xD800..0xDC00).contains(&hex) {
                                // Surrogate pair: expect \uDCxx next.
                                if self.bytes.get(self.pos + 1..self.pos + 3) != Some(b"\\u") {
                                    return Err(Error::custom("lone high surrogate"));
                                }
                                let lo = self
                                    .bytes
                                    .get(self.pos + 3..self.pos + 7)
                                    .and_then(|h| std::str::from_utf8(h).ok())
                                    .and_then(|h| u32::from_str_radix(h, 16).ok())
                                    .ok_or_else(|| Error::custom("bad \\u escape"))?;
                                self.pos += 6;
                                let c = 0x10000 + ((hex - 0xD800) << 10) + (lo - 0xDC00);
                                out.push(
                                    char::from_u32(c)
                                        .ok_or_else(|| Error::custom("bad surrogate pair"))?,
                                );
                            } else {
                                out.push(
                                    char::from_u32(hex)
                                        .ok_or_else(|| Error::custom("bad \\u escape"))?,
                                );
                            }
                        }
                        other => {
                            return Err(Error::custom(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::custom("invalid utf-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(out));
        }
        loop {
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(out));
                }
                other => {
                    return Err(Error::custom(format!(
                        "expected ',' or ']' in array, got {:?}",
                        other.map(|b| b as char)
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut out = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            out.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(out));
                }
                other => {
                    return Err(Error::custom(format!(
                        "expected ',' or '}}' in object, got {:?}",
                        other.map(|b| b as char)
                    )))
                }
            }
        }
    }
}

/// Build a [`Value`] from object/array literal syntax or any
/// serializable expression.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($k:literal : $v:expr),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut m = $crate::Map::new();
        $( m.insert(::std::string::String::from($k), $crate::to_value(&$v)); )*
        $crate::Value::Object(m)
    }};
    ([ $($v:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![$($crate::to_value(&$v)),*])
    };
    ($v:expr) => { $crate::to_value(&$v) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_value() {
        let v = json!({
            "name": "zigong",
            "n": 3usize,
            "rate": 0.5f64,
            "flag": true,
            "items": vec![1u32, 2, 3],
            "missing": Option::<u32>::None,
        });
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
        assert_eq!(back["name"], "zigong");
        assert_eq!(back["n"], 3i64);
        assert_eq!(back["flag"], true);
        assert_eq!(back["items"][2], 3i64);
        assert!(back["missing"].is_null());
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v: Value = from_str(r#"{"s": "a\"b\\c\ndé 漢"}"#).unwrap();
        assert_eq!(v["s"], "a\"b\\c\ndé 漢");
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_contains_indent() {
        let v = json!({"a": 1u8, "b": vec![1u8]});
        let p = to_string_pretty(&v).unwrap();
        assert!(p.contains("\n  \"a\": 1"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("tru").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }

    #[test]
    fn negative_and_float_numbers() {
        let v: Value = from_str("[-1.5e3, 0.25, -7]").unwrap();
        assert_eq!(v[0], -1500.0f64);
        assert_eq!(v[1], 0.25f64);
        assert_eq!(v[2], -7i64);
    }
}
